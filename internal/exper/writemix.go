package exper

import (
	"fmt"
	"strings"

	"danas/internal/metrics"
	"danas/internal/trace"
)

// WriteMixReadFracs is the mix axis: from the paper's read-only regime
// (where ORDMA shines) down to a pure write stream (where every
// protocol is gated by the shards' ability to destage dirty data,
// §4.2.2).
var WriteMixReadFracs = []float64{1.0, 0.9, 0.7, 0.5, 0.3, 0.0}

// WriteMixShardCounts is the fleet-size axis.
var WriteMixShardCounts = []int{1, 2, 4, 8}

// WriteMixCommitEvery is how many writes ride between the trace's
// periodic whole-file commits.
const WriteMixCommitEvery = 32

// WriteMixGen is the trace the (frac) column replays: the trace
// experiment's Zipf-skewed Poisson stream with the read fraction swept
// and periodic commit records added.
func WriteMixGen(scale Scale, readFrac float64) trace.GenConfig {
	gen := TraceGen(scale)
	gen.ReadFrac = readFrac
	gen.CommitEvery = WriteMixCommitEvery
	return gen
}

// WriteMixRow is one (system, shards, read fraction) cell.
type WriteMixRow struct {
	System   string
	Shards   int
	ReadFrac float64
	// MBps is completed-byte throughput over the replay; P50/P99Micros
	// are response-time percentiles from recorded arrival (commit
	// operations included, so destage waits count).
	MBps      float64
	P50Micros float64
	P99Micros float64
	// Stalls and MaxOutstanding describe the open-loop driver's queue.
	Stalls         int64
	MaxOutstanding int
	// StallMillis is total server handler time blocked at the dirty
	// high-water mark, summed across shards; Throttled counts the writes
	// that blocked there.
	StallMillis float64
	Throttled   uint64
	// FlushedMB is data destaged by the flushers; BlocksPerFlush is the
	// mean coalescing achieved per destage I/O; Commits counts OpCommit
	// executions across shards.
	FlushedMB      float64
	BlocksPerFlush float64
	Commits        uint64
	// DiskPct is per-shard disk utilization over the replay — the
	// flusher's destage traffic (reads stay warm in the server caches).
	DiskPct []float64
}

// WriteMixTables renders, per fleet size, throughput against the read
// fraction (one column per system).
func WriteMixTables(rows []WriteMixRow) []*metrics.Table {
	byShards := make(map[int]*metrics.Table)
	var order []*metrics.Table
	for _, r := range rows {
		t, ok := byShards[r.Shards]
		if !ok {
			t = metrics.NewTable(
				fmt.Sprintf("Write mix: completed throughput vs read fraction, %d shard(s)", r.Shards),
				"read %", "MB/s", ScalingSystems...)
			byShards[r.Shards] = t
			order = append(order, t)
		}
		t.Set(r.ReadFrac*100, r.System, r.MBps)
	}
	return order
}

// FormatWriteMix renders the sweep deterministically: the per-fleet-size
// throughput tables followed by one detail line per cell carrying the
// tail latency, backpressure stall time, destage volume and coalescing,
// and every shard's disk utilization.
func FormatWriteMix(rows []WriteMixRow) string {
	var b strings.Builder
	for _, t := range WriteMixTables(rows) {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	b.WriteString("per-cell detail (lat us from recorded arrival, commits included; wstall = dirty high-water\n")
	b.WriteString("throttle time across shards; flush = destaged MB @ mean blocks/IO; disk% = per-shard destage util):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "S=%d read=%3.0f%% %-16s agg=%7.1f MB/s  p50=%9.1f p99=%9.1f  stalls=%-5d wstall=%8.1fms thr=%-5d flush=%7.1fMB@%4.1f commits=%-4d disk%%=%s\n",
			r.Shards, r.ReadFrac*100, r.System, r.MBps, r.P50Micros, r.P99Micros,
			r.Stalls, r.StallMillis, r.Throttled, r.FlushedMB, r.BlocksPerFlush, r.Commits,
			pctList(r.DiskPct))
	}
	return b.String()
}
