// Fixture: the allowlist covers only runner.go; every other exper
// file is held to the scheduler discipline.
package exper

func offPool(f func()) {
	go f() // want `raw go statement in simulator-domain code`
}
