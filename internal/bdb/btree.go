package bdb

import (
	"encoding/binary"
	"fmt"
)

// Page type tags.
const (
	pageFree     = 0
	pageLeaf     = 1
	pageInternal = 2
	pageOverflow = 3
)

// Leaf entry: key(8) + overflow page(4) + value length(4).
const leafEntrySize = 16

// Leaf header: type(1) + n(2) + next(4).
const leafHeaderSize = 7

// maxLeafEntries is the leaf fan-out.
const maxLeafEntries = (PageSize - leafHeaderSize) / leafEntrySize

// Internal header: type(1) + n(2); then child0(4) + n*(key 8 + child 4).
const innerHeaderSize = 3

// maxInnerKeys is the internal-node fan-out minus one.
const maxInnerKeys = (PageSize - innerHeaderSize - 4) / 12

// Overflow header: type(1) + used(2) + next(4).
const ovHeaderSize = 7

// ovCap is the data capacity of one overflow page.
const ovCap = PageSize - ovHeaderSize

// leaf is the decoded form of a leaf page.
type leaf struct {
	keys  []uint64
	ovs   []PageID
	vlens []uint32
	next  PageID
}

func parseLeaf(data []byte) (*leaf, error) {
	if data[0] != pageLeaf {
		return nil, fmt.Errorf("bdb: page is not a leaf (type %d)", data[0])
	}
	n := int(binary.LittleEndian.Uint16(data[1:]))
	l := &leaf{
		keys:  make([]uint64, n),
		ovs:   make([]PageID, n),
		vlens: make([]uint32, n),
		next:  PageID(binary.LittleEndian.Uint32(data[3:])),
	}
	off := leafHeaderSize
	for i := 0; i < n; i++ {
		l.keys[i] = binary.LittleEndian.Uint64(data[off:])
		l.ovs[i] = PageID(binary.LittleEndian.Uint32(data[off+8:]))
		l.vlens[i] = binary.LittleEndian.Uint32(data[off+12:])
		off += leafEntrySize
	}
	return l, nil
}

func (l *leaf) write(data []byte) {
	for i := range data {
		data[i] = 0
	}
	data[0] = pageLeaf
	binary.LittleEndian.PutUint16(data[1:], uint16(len(l.keys)))
	binary.LittleEndian.PutUint32(data[3:], uint32(l.next))
	off := leafHeaderSize
	for i := range l.keys {
		binary.LittleEndian.PutUint64(data[off:], l.keys[i])
		binary.LittleEndian.PutUint32(data[off+8:], uint32(l.ovs[i]))
		binary.LittleEndian.PutUint32(data[off+12:], l.vlens[i])
		off += leafEntrySize
	}
}

// search returns the index of key, or insertion point and false.
func (l *leaf) search(key uint64) (int, bool) {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l.keys) && l.keys[lo] == key
}

// inner is the decoded form of an internal page.
type inner struct {
	keys     []uint64
	children []PageID // len(keys)+1
}

func parseInner(data []byte) (*inner, error) {
	if data[0] != pageInternal {
		return nil, fmt.Errorf("bdb: page is not internal (type %d)", data[0])
	}
	n := int(binary.LittleEndian.Uint16(data[1:]))
	in := &inner{keys: make([]uint64, n), children: make([]PageID, n+1)}
	in.children[0] = PageID(binary.LittleEndian.Uint32(data[innerHeaderSize:]))
	off := innerHeaderSize + 4
	for i := 0; i < n; i++ {
		in.keys[i] = binary.LittleEndian.Uint64(data[off:])
		in.children[i+1] = PageID(binary.LittleEndian.Uint32(data[off+8:]))
		off += 12
	}
	return in, nil
}

func (in *inner) write(data []byte) {
	for i := range data {
		data[i] = 0
	}
	data[0] = pageInternal
	binary.LittleEndian.PutUint16(data[1:], uint16(len(in.keys)))
	binary.LittleEndian.PutUint32(data[innerHeaderSize:], uint32(in.children[0]))
	off := innerHeaderSize + 4
	for i := range in.keys {
		binary.LittleEndian.PutUint64(data[off:], in.keys[i])
		binary.LittleEndian.PutUint32(data[off+8:], uint32(in.children[i+1]))
		off += 12
	}
}

// childFor returns the child to descend into for key.
func (in *inner) childFor(key uint64) PageID {
	lo, hi := 0, len(in.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if in.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return in.children[lo]
}
