package nic

import (
	"fmt"

	"danas/internal/netsim"
	"danas/internal/sim"
)

// Status is the completion status of an RDMA operation. Anything other
// than StatusOK is a recoverable ("soft") transport error in the VI
// descriptor sense — the ORDMA exception mechanism of §4.1.
type Status int

const (
	StatusOK Status = iota
	// StatusNotExported: no valid TPT translation for the target range.
	StatusNotExported
	// StatusNotResident: translation exists but the page is not resident.
	StatusNotResident
	// StatusLocked: the host holds the target locked (e.g. updating it).
	StatusLocked
	// StatusBadCapability: capability MAC verification failed.
	StatusBadCapability
	// StatusBadRequest: malformed request (zero length etc.).
	StatusBadRequest
	// StatusTimeout: the initiator's completion timer fired before any
	// completion (data, ack, or exception) arrived — the path to the
	// target is black-holed (e.g. a down switch). Local, soft: the far
	// end may still have executed the operation.
	StatusTimeout
)

func (st Status) String() string {
	switch st {
	case StatusOK:
		return "ok"
	case StatusNotExported:
		return "not-exported"
	case StatusNotResident:
		return "not-resident"
	case StatusLocked:
		return "locked"
	case StatusBadCapability:
		return "bad-capability"
	case StatusBadRequest:
		return "bad-request"
	case StatusTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("status(%d)", int(st))
	}
}

// OpKind distinguishes remote reads from remote writes.
type OpKind int

const (
	Get OpKind = iota // remote read: data flows target -> initiator
	Put               // remote write: data flows initiator -> target
)

// Op is one RDMA operation issued by this NIC against a remote NIC.
type Op struct {
	Kind   OpKind
	Target *NIC
	VA     uint64
	Len    int64
	Cap    []byte // capability presented with the request
	Notify NotifyMode
	// Done receives the completion status at the initiator. Run after
	// notification cost has been charged per Notify.
	Done func(Status)
	// Timeout, when positive, bounds the wait for initiator-side
	// completion: if nothing (data, ack, exception) has arrived when it
	// expires, the op completes with StatusTimeout. Completions racing
	// in later are discarded by the exactly-once guard.
	Timeout sim.Duration

	initiator *NIC // stamped by RDMAAsync
	rejected  bool // target validation failed; drop its data frames
	completed bool // initiator completion already delivered
}

// ctrlBytes is the wire size of a get/put control header (descriptor,
// addresses, lengths) excluding any capability.
const ctrlBytes = 64

// exceptionBytes is the wire size of a NIC-to-NIC exception report.
const exceptionBytes = 32

// rdmaFlight tags frames belonging to RDMA traffic.
type rdmaFlight struct {
	op        *Op    // the operation this frame belongs to
	target    *NIC   // frame destination
	ctrl      bool   // request/control frame (carries the Op by reference)
	exception Status // nonzero on exception frames
	last      bool   // last data fragment
	ack       bool   // put acknowledgement back to the initiator
}

// RDMA issues op from process context, charging the host post cost
// (descriptor build + doorbell).
func (n *NIC) RDMA(p *sim.Proc, op *Op) {
	n.h.Compute(p, n.p.GMSendCost+n.p.PIOWrite)
	n.RDMAAsync(op)
}

// RDMAAsync issues op from event context (no host cost charged here).
func (n *NIC) RDMAAsync(op *Op) {
	if op.Target == nil || op.Target == n {
		panic("nic: RDMA needs a remote target")
	}
	op.initiator = n
	if op.Timeout > 0 {
		n.s.After(op.Timeout, func() {
			if !op.completed {
				n.stats.RDMATimeouts++
			}
			n.completeOp(op, StatusTimeout)
		})
	}
	switch op.Kind {
	case Get:
		// Send a small control frame; data streams back from the target.
		n.sendRDMAFrames(op.Target, ctrlBytes+len(op.Cap), 0, &rdmaFlight{
			op: op, target: op.Target, ctrl: true,
		})
	case Put:
		// Control frame immediately; the data stream after the put
		// startup latency. The send gate releases any traffic the host
		// posts in between (e.g. the RPC reply) together with — never
		// ahead of — the data, preserving connection ordering.
		n.sendRDMAFrames(op.Target, ctrlBytes+len(op.Cap), 0, &rdmaFlight{
			op: op, target: op.Target, ctrl: true,
		})
		release := n.s.Now().Add(n.p.NICPutLatency)
		if release > n.sendGate {
			n.sendGate = release
		}
		n.s.At(release, func() {
			n.streamData(op.Target, op.Len, op, 0)
		})
	default:
		panic("nic: unknown RDMA kind")
	}
}

// sendRDMAFrames pushes one small control/exception frame through the
// firmware+DMA+wire pipeline.
func (n *NIC) sendRDMAFrames(to *NIC, bytes int, extraFw sim.Duration, fl *rdmaFlight) {
	n.stats.FragsSent++
	fwDone := n.fw.Serve(n.p.NICFragProcess+extraFw, nil)
	n.dma.ServeAt(fwDone, sim.TransferTime(int64(bytes), n.p.NICDMABandwidth), func() {
		n.port.Send(&netsim.Frame{To: to.port, Bytes: bytes, Payload: &flight{rdma: fl, bytes: bytes}})
	})
}

// streamData fragments and transmits an RDMA data stream. quirkStall adds
// per-fragment firmware time (the GM get bug, §5.2). op is attached so the
// far end can recognise completion.
func (n *NIC) streamData(to *NIC, length int64, op *Op, quirkStall sim.Duration) {
	frag := int64(n.p.GMFragSize)
	sent := int64(0)
	for sent < length {
		bytes := frag
		if length-sent < bytes {
			bytes = length - sent
		}
		sent += bytes
		last := sent >= length
		fl := &rdmaFlight{op: op, target: to, last: last}
		n.stats.FragsSent++
		fwDone := n.fw.Serve(n.p.NICFragProcess+quirkStall, nil)
		b := bytes
		n.dma.ServeAt(fwDone, sim.TransferTime(b, n.p.NICDMABandwidth), func() {
			n.port.Send(&netsim.Frame{To: to.port, Bytes: int(b), Payload: &flight{rdma: fl, bytes: int(b)}})
		})
	}
}

// rdmaFragArrived handles RDMA frames after the standard receive pipeline
// (DMA + firmware) has run.
func (n *NIC) rdmaFragArrived(fl *flight) {
	r := fl.rdma
	switch {
	case r.ctrl && r.op.Kind == Get:
		n.serveGet(r.op)
	case r.ctrl && r.op.Kind == Put:
		n.servePutCtrl(r.op)
	case r.exception != StatusOK:
		n.completeOp(r.op, r.exception)
	case r.ack:
		n.completeOp(r.op, StatusOK)
	case r.last:
		// Last data fragment.
		if r.op.Kind == Get {
			// Data arrived back at the get initiator.
			n.completeOp(r.op, StatusOK)
		} else if !r.op.rejected {
			// Put data fully placed at the target; notify the initiator
			// with a small ack so completion reflects remote placement.
			n.stats.PutsServed++
			init := r.op.initiator
			n.sendRDMAFrames(init, exceptionBytes, 0, &rdmaFlight{op: r.op, target: init, ack: true})
		}
	}
}

// serveGet validates and serves a remote read against local memory
// — entirely in NIC firmware, no host CPU (the whole point of ORDMA).
// Validation happens when the request reaches the firmware; once its pages
// are TLB-resident they are pinned and locked (§4.1), so the transfer
// cannot be invalidated underneath us.
func (n *NIC) serveGet(op *Op) {
	extra := sim.Duration(0)
	if n.TPT.UseCapabilities {
		extra += n.p.NICCapVerify
	}
	_, st := n.TPT.lookup(op.VA, op.Len, op.Cap)
	if st == StatusOK {
		extra += n.tlbCharge(op)
	}
	n.fw.Serve(n.p.NICGetProcess+extra, func() {
		if st != StatusOK {
			n.stats.Exceptions++
			if st == StatusBadCapability {
				n.stats.CapRejects++
			}
			n.sendRDMAFrames(op.initiator, exceptionBytes, 0,
				&rdmaFlight{op: op, target: op.initiator, exception: st})
			return
		}
		n.stats.GetsServed++
		quirk := sim.Duration(0)
		if q := n.p.GMGetQuirkSize; q > 0 && op.Len >= q {
			quirk = n.p.GMGetQuirkStall
		}
		// Descriptor fetch and firmware scheduling latency: delays the
		// response but does not occupy the firmware station (§ DESIGN.md).
		n.s.After(n.p.NICGetLatency, func() {
			n.streamData(op.initiator, op.Len, op, quirk)
		})
	})
}

// servePutCtrl validates an incoming put. Data frames follow on the wire;
// on validation failure an exception races ahead of them (the data is
// discarded at arrival in real hardware; we simply let the frames drain).
func (n *NIC) servePutCtrl(op *Op) {
	extra := sim.Duration(0)
	if n.TPT.UseCapabilities {
		extra += n.p.NICCapVerify
	}
	_, st := n.TPT.lookup(op.VA, op.Len, op.Cap)
	if st == StatusOK {
		extra += n.tlbCharge(op)
	}
	n.fw.Serve(n.p.NICPutProcess+extra, func() {
		if st != StatusOK {
			op.rejected = true
			n.stats.Exceptions++
			n.sendRDMAFrames(op.initiator, exceptionBytes, 0,
				&rdmaFlight{op: op, target: op.initiator, exception: st})
			return
		}
		// Accept: data fragments will be DMA'd straight into host memory
		// as they arrive; no host CPU involvement at the target.
	})
}

// tlbCharge walks the op's pages through the NIC TLB, charging miss costs:
// the NIC interrupts the host, which reloads the entry by PIO (§4.1).
func (n *NIC) tlbCharge(op *Op) sim.Duration {
	var extra sim.Duration
	first := pageOf(op.VA)
	last := pageOf(op.VA + uint64(maxInt64(op.Len, 1)) - 1)
	for pg := first; pg <= last; pg++ {
		if n.tlb.touch(pg) {
			n.stats.TLBHits++
		} else {
			n.stats.TLBMisses++
			extra += n.p.NICTLBMissCost
			n.stats.Interrupts++
			n.h.Interrupt(n.p.PIOWrite, nil)
		}
	}
	return extra
}

// completeOp delivers an initiator-side completion with the configured
// notification discipline. An operation completes exactly once.
func (n *NIC) completeOp(op *Op, st Status) {
	if op.completed {
		return
	}
	op.completed = true
	done := op.Done
	if done == nil {
		return
	}
	switch op.Notify {
	case Poll:
		n.s.After(0, func() { done(st) })
	case Intr:
		n.stats.Interrupts++
		n.h.Interrupt(0, func() { done(st) })
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
