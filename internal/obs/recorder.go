package obs

import (
	"fmt"

	"danas/internal/sim"
)

// Recorder hands out spans from one preallocated arena. Capacity is
// fixed up front (the replay knows its op count), so recording costs
// one bump-pointer per op and no allocation on the hot path; an
// overflowing op records nowhere (the hooks see a nil span) and is
// counted in Dropped.
type Recorder struct {
	arena  []Span
	used   int
	drops  uint64
	closed bool
}

// NewRecorder builds a recorder with room for capacity spans. The
// error wraps ErrBadConfig for a non-positive capacity.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("%w: recorder capacity %d (need >= 1)", ErrBadConfig, capacity)
	}
	return &Recorder{arena: make([]Span, capacity)}, nil
}

// NewSpan starts the span for op seq of kind kind, scheduled to arrive
// at start. It returns nil — which every hook absorbs — when the
// recorder is nil, closed, or full.
func (r *Recorder) NewSpan(seq int, kind string, start sim.Time) *Span {
	if r == nil || r.closed {
		return nil
	}
	if r.used == len(r.arena) {
		r.drops++
		return nil
	}
	sp := &r.arena[r.used]
	r.used++
	sp.Seq, sp.Kind, sp.Start = seq, kind, start
	return sp
}

// Close stops the recorder: further NewSpan calls return nil. Spans
// already handed out remain valid and readable.
func (r *Recorder) Close() {
	if r != nil {
		r.closed = true
	}
}

// Spans returns every recorded span in recording order. The slice
// aliases the recorder's arena; treat it as read-only.
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	out := make([]*Span, r.used)
	for i := range out {
		out[i] = &r.arena[i]
	}
	return out
}

// Len counts recorded spans; Dropped counts ops that found the arena
// full.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.used
}

func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.drops
}

// Window is one retention interval of the flight recorder, typically a
// fault window.
type Window struct {
	From, To sim.Time
}

// Flight filters spans to those overlapping any window — the
// fault-window flight recorder: a scenario with faults retains exactly
// the spans that were in flight while the fleet was degraded. Spans
// keep recording order.
func Flight(spans []*Span, windows []Window) []*Span {
	if len(windows) == 0 {
		return nil
	}
	var out []*Span
	for _, sp := range spans {
		for _, w := range windows {
			if sp.Start <= w.To && sp.End >= w.From {
				out = append(out, sp)
				break
			}
		}
	}
	return out
}
