package fsim

import (
	"bytes"
	"testing"
	"testing/quick"

	"danas/internal/sim"
)

func TestCreateLookupRemove(t *testing.T) {
	fs := NewFS()
	f, err := fs.Create("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1000 {
		t.Fatalf("size %d", f.Size())
	}
	if _, err := fs.Create("a", 10); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	g, err := fs.Lookup("a")
	if err != nil || g != f {
		t.Fatal("lookup failed")
	}
	if h, err := fs.ByID(f.ID); err != nil || h != f {
		t.Fatal("ByID failed")
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("a"); err == nil {
		t.Fatal("lookup after remove succeeded")
	}
	if err := fs.Remove("a"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestSyntheticContentDeterministic(t *testing.T) {
	fs := NewFS()
	f, _ := fs.Create("a", 1<<16)
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	f.ReadAt(a, 8192)
	f.ReadAt(b, 8192)
	if !bytes.Equal(a, b) {
		t.Fatal("content not deterministic")
	}
	f.ReadAt(b, 8193)
	if bytes.Equal(a, b) {
		t.Fatal("shifted read should differ")
	}
	// Different files differ.
	g, _ := fs.Create("b", 1<<16)
	g.ReadAt(b, 8192)
	if bytes.Equal(a, b) {
		t.Fatal("two files share content")
	}
}

func TestReadAtEOF(t *testing.T) {
	fs := NewFS()
	f, _ := fs.Create("a", 100)
	p := make([]byte, 64)
	if n := f.ReadAt(p, 90); n != 10 {
		t.Fatalf("short read n=%d, want 10", n)
	}
	if n := f.ReadAt(p, 100); n != 0 {
		t.Fatalf("read at EOF n=%d", n)
	}
}

func TestWriteReadBack(t *testing.T) {
	fs := NewFS()
	f, _ := fs.Create("a", 200000)
	msg := []byte("hello, direct access storage")
	f.WriteAt(msg, 131000) // crosses an overlay chunk boundary region
	got := make([]byte, len(msg))
	f.ReadAt(got, 131000)
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
	// Synthetic content before the write is preserved.
	pre := make([]byte, 10)
	f.ReadAt(pre, 130990)
	fresh := NewFS()
	f2, _ := fresh.Create("a", 200000)
	pre2 := make([]byte, 10)
	f2.ReadAt(pre2, 130990)
	if !bytes.Equal(pre, pre2) {
		t.Fatal("write disturbed neighbouring synthetic content")
	}
}

func TestWriteExtends(t *testing.T) {
	fs := NewFS()
	f, _ := fs.Create("a", 10)
	f.WriteAt([]byte("xyz"), 100)
	if f.Size() != 103 {
		t.Fatalf("size %d after extending write", f.Size())
	}
	got := make([]byte, 3)
	f.ReadAt(got, 100)
	if string(got) != "xyz" {
		t.Fatalf("got %q", got)
	}
}

func TestTruncate(t *testing.T) {
	fs := NewFS()
	f, _ := fs.Create("a", 1<<20)
	f.WriteAt([]byte("data"), 500000)
	f.Truncate(1000)
	if f.Size() != 1000 {
		t.Fatalf("size %d", f.Size())
	}
	if len(f.overlay) != 0 {
		t.Fatal("truncate did not drop overlay chunks past EOF")
	}
}

// Property: WriteAt then ReadAt round-trips arbitrary data at arbitrary
// offsets.
func TestWriteReadProperty(t *testing.T) {
	fs := NewFS()
	f, _ := fs.Create("p", 1<<20)
	check := func(data []byte, offRaw uint32) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw % (1 << 20))
		f.WriteAt(data, off)
		got := make([]byte, len(data))
		f.ReadAt(got, off)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBlockRefBytes(t *testing.T) {
	fs := NewFS()
	f, _ := fs.Create("a", 10000)
	ref := BlockRef{File: f.ID, Off: 4096, Len: 1024}
	got, err := ref.Bytes(fs)
	if err != nil || len(got) != 1024 {
		t.Fatalf("ref bytes: %v len=%d", err, len(got))
	}
	want := make([]byte, 1024)
	f.ReadAt(want, 4096)
	if !bytes.Equal(got, want) {
		t.Fatal("ref content mismatch")
	}
	if _, err := (BlockRef{File: 999}).Bytes(fs); err == nil {
		t.Fatal("dangling ref resolved")
	}
}

func TestDiskTiming(t *testing.T) {
	s := sim.New()
	defer s.Close()
	d := NewDisk(s, "d", sim.Millis(5), 40e6)
	var end sim.Time
	s.Go("r", func(p *sim.Proc) {
		d.Read(p, 40e6/1000) // 1ms of media transfer
		end = p.Now()
	})
	s.Run()
	if end != sim.Time(6*sim.Millisecond) {
		t.Fatalf("read finished at %v, want 6ms", sim.Duration(end))
	}
	if d.Reads != 1 || d.BytesRead != 40e3 {
		t.Fatalf("stats %d/%d", d.Reads, d.BytesRead)
	}
}

func newCacheRig(t *testing.T, blockSize int64, capacity int) (*sim.Scheduler, *FS, *ServerCache) {
	t.Helper()
	s := sim.New()
	t.Cleanup(s.Close)
	fs := NewFS()
	disk := NewDisk(s, "disk", sim.Millis(5), 40e6)
	return s, fs, NewServerCache(fs, disk, blockSize, capacity)
}

func TestServerCacheHitMiss(t *testing.T) {
	s, fs, c := newCacheRig(t, 4096, 100)
	f, _ := fs.Create("a", 64*1024)
	s.Go("r", func(p *sim.Proc) {
		if _, hit := c.Get(p, f, 0); hit {
			t.Error("cold read hit")
		}
		if _, hit := c.Get(p, f, 100); !hit { // same block
			t.Error("warm re-read missed")
		}
		if c.Hits != 1 || c.Misses != 1 {
			t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
		}
	})
	s.Run()
	if sim.Duration(s.Now()) < sim.Millis(5) {
		t.Fatal("miss did not pay disk time")
	}
}

func TestServerCacheWarm(t *testing.T) {
	s, fs, c := newCacheRig(t, 4096, 1000)
	f, _ := fs.Create("a", 100*4096)
	c.Warm(f)
	if c.Len() != 100 {
		t.Fatalf("warm cached %d blocks", c.Len())
	}
	s.Go("r", func(p *sim.Proc) {
		for off := int64(0); off < f.Size(); off += 4096 {
			if _, hit := c.Get(p, f, off); !hit {
				t.Errorf("miss at %d after Warm", off)
			}
		}
	})
	s.Run()
	if s.Now() != 0 {
		t.Fatal("warm hits should cost no device time")
	}
}

func TestServerCacheEvictionHook(t *testing.T) {
	s, fs, c := newCacheRig(t, 4096, 4)
	f, _ := fs.Create("a", 10*4096)
	var evicted []BlockKey
	c.OnEvict = func(b *CacheBlock) { evicted = append(evicted, b.Key) }
	s.Go("r", func(p *sim.Proc) {
		for off := int64(0); off < f.Size(); off += 4096 {
			c.Get(p, f, off)
		}
	})
	s.Run()
	if c.Len() != 4 {
		t.Fatalf("resident %d, want capacity 4", c.Len())
	}
	if len(evicted) != 6 {
		t.Fatalf("evictions %d, want 6", len(evicted))
	}
	// LRU: the first-read blocks go first.
	if evicted[0] != (BlockKey{File: f.ID, Off: 0}) {
		t.Fatalf("first eviction %+v", evicted[0])
	}
}

func TestServerCacheTailBlock(t *testing.T) {
	s, fs, c := newCacheRig(t, 4096, 10)
	f, _ := fs.Create("a", 4096+100) // tail block is 100 bytes
	s.Go("r", func(p *sim.Proc) {
		b, _ := c.Get(p, f, 4096)
		if b.Len != 100 {
			t.Errorf("tail block len %d, want 100", b.Len)
		}
	})
	s.Run()
}

func TestEvictFraction(t *testing.T) {
	s, fs, c := newCacheRig(t, 4096, 1000)
	defer s.Close()
	f, _ := fs.Create("a", 200*4096)
	c.Warm(f)
	r := sim.NewRand(42)
	c.EvictFraction(f, 0.5, r)
	got := c.Len()
	if got < 60 || got > 140 {
		t.Fatalf("after evicting ~50%%, %d blocks remain of 200", got)
	}
}
