package exper

import (
	"testing"
)

// The experiment harness is exercised at tiny scale: these tests assert
// the paper's qualitative claims (who wins, where, by roughly what factor)
// rather than absolute numbers, which bench/danas-bench report.
const tiny = Scale(0.04)

func TestTable2Anchors(t *testing.T) {
	rows := Table2(tiny)
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Protocol] = r
	}
	check := func(name string, rtt, bw float64, tolPct float64) {
		r := byName[name]
		if r.RTTMicros < rtt*(1-tolPct) || r.RTTMicros > rtt*(1+tolPct) {
			t.Errorf("%s RTT %.1fus, want %.0f±%.0f%%", name, r.RTTMicros, rtt, tolPct*100)
		}
		if r.MBps < bw*(1-tolPct) || r.MBps > bw*(1+tolPct) {
			t.Errorf("%s BW %.1f MB/s, want %.0f±%.0f%%", name, r.MBps, bw, tolPct*100)
		}
	}
	// Paper Table 2 within 10%.
	check("GM", 23, 244, 0.10)
	check("VI poll", 23, 244, 0.10)
	check("VI block", 53, 244, 0.10)
	check("UDP/Ethernet", 80, 166, 0.10)
}

func TestTable3Claims(t *testing.T) {
	rows := Table3(tiny)
	get := func(name string) Table3Row {
		for _, r := range rows {
			if r.Mechanism == name {
				return r
			}
		}
		t.Fatalf("row %q missing", name)
		return Table3Row{}
	}
	inline, direct, ordma := get("RPC in-line read"), get("RPC direct read"), get("ORDMA read")
	// ORDMA beats both RPC mechanisms in both columns.
	if ordma.InMemMicros >= direct.InMemMicros || ordma.InCacheMicros >= direct.InCacheMicros {
		t.Errorf("ORDMA (%.0f/%.0f) not faster than direct RPC (%.0f/%.0f)",
			ordma.InMemMicros, ordma.InCacheMicros, direct.InMemMicros, direct.InCacheMicros)
	}
	// Paper's headline: ~36% lower response time than direct RPC (±10 points).
	imp := (direct.InMemMicros - ordma.InMemMicros) / direct.InMemMicros
	if imp < 0.26 || imp > 0.46 {
		t.Errorf("ORDMA improvement over direct RPC = %.0f%%, want ~36%%", imp*100)
	}
	// The cache layer costs more for inline (extra copy) than for the
	// direct-placement mechanisms.
	inlineDelta := inline.InCacheMicros - inline.InMemMicros
	directDelta := direct.InCacheMicros - direct.InMemMicros
	if inlineDelta <= directDelta {
		t.Errorf("inline cache delta %.1f <= direct cache delta %.1f", inlineDelta, directDelta)
	}
}

func TestFig3Claims(t *testing.T) {
	// Larger than `tiny`: at very small file sizes the one-time buffer
	// registrations dominate client CPU and distort Figure 4's tail.
	thr, cpu := Fig34(Scale(0.12))
	// At 64KB+: the RDDP systems near the link, standard NFS far below.
	for _, system := range []string{"NFS pre-posting", "NFS hybrid", "DAFS"} {
		v, ok := thr.Get(64, system)
		if !ok || v < 200 {
			t.Errorf("%s at 64KB = %.0f MB/s, want link-bound (>200)", system, v)
		}
	}
	nfs64, _ := thr.Get(64, "NFS")
	if nfs64 > 90 {
		t.Errorf("standard NFS at 64KB = %.0f MB/s, want copy-bound (<90)", nfs64)
	}
	// Throughput grows (or stays) with block size for every system up to
	// saturation.
	for _, system := range Systems {
		v4, _ := thr.Get(4, system)
		v64, _ := thr.Get(64, system)
		if v64 < v4 {
			t.Errorf("%s throughput fell from %.0f (4KB) to %.0f (64KB)", system, v4, v64)
		}
	}
	// Figure 4: DAFS client CPU lowest; at >=64KB it is below 15%.
	dafs64, _ := cpu.Get(64, "DAFS")
	pp64, _ := cpu.Get(64, "NFS pre-posting")
	hy64, _ := cpu.Get(64, "NFS hybrid")
	if dafs64 >= 15 {
		t.Errorf("DAFS client CPU at 64KB = %.1f%%, paper says <15%%", dafs64)
	}
	if !(dafs64 < hy64 && hy64 < pp64) {
		t.Errorf("client CPU ordering broken: DAFS %.1f, hybrid %.1f, pp %.1f", dafs64, hy64, pp64)
	}
}

func TestFig6Claims(t *testing.T) {
	tbl := Fig6(Scale(0.08))
	for _, ratio := range Fig6HitRatios {
		o, _ := tbl.Get(float64(ratio), "ODAFS")
		d, _ := tbl.Get(float64(ratio), "DAFS")
		if o <= d {
			t.Errorf("at %d%% hit ratio ODAFS %.0f <= DAFS %.0f txns/s", ratio, o, d)
		}
		// Paper: ~34% higher throughput; accept 15-75%.
		if imp := o/d - 1; imp < 0.15 || imp > 0.75 {
			t.Errorf("at %d%%: ODAFS advantage %.0f%%, want ~34%%", ratio, imp*100)
		}
	}
	// Monotone in hit ratio.
	for _, series := range []string{"DAFS", "ODAFS"} {
		v25, _ := tbl.Get(25, series)
		v75, _ := tbl.Get(75, series)
		if v75 <= v25 {
			t.Errorf("%s throughput not increasing with hit ratio: %.0f -> %.0f", series, v25, v75)
		}
	}
}

func TestFig7Claims(t *testing.T) {
	tbl := Fig7(Scale(0.08))
	// ODAFS saturates the link at 4-32KB.
	for _, kb := range []int{4, 8, 16, 32} {
		v, _ := tbl.Get(float64(kb), "ODAFS")
		if v < 220 {
			t.Errorf("ODAFS at %dKB = %.0f MB/s, want link-bound", kb, v)
		}
	}
	// The GM get quirk dips the 64KB point below the 32KB one.
	v64, _ := tbl.Get(64, "ODAFS")
	v32, _ := tbl.Get(32, "ODAFS")
	if v64 >= v32 {
		t.Errorf("GM get quirk missing: ODAFS 64KB %.0f >= 32KB %.0f", v64, v32)
	}
	// DAFS is server-CPU-bound at 4KB and approaches the link by 32KB.
	d4, _ := tbl.Get(4, "DAFS")
	d32, _ := tbl.Get(32, "DAFS")
	if d4 > 150 || d32 < 200 {
		t.Errorf("DAFS shape wrong: %.0f at 4KB, %.0f at 32KB", d4, d32)
	}
	// Polling improves DAFS at 4KB; ODAFS still wins by roughly the
	// paper's 32%.
	dp4, ok := tbl.Get(4, "DAFS (polling)")
	if !ok || dp4 <= d4 {
		t.Errorf("polling did not improve DAFS at 4KB: %.0f vs %.0f", dp4, d4)
	}
	o4, _ := tbl.Get(4, "ODAFS")
	if imp := o4/dp4 - 1; imp < 0.15 || imp > 0.60 {
		t.Errorf("ODAFS advantage over polling DAFS = %.0f%%, want ~32%%", imp*100)
	}
}

func TestAblationsRun(t *testing.T) {
	// Smoke: every ablation completes and produces the expected series.
	if tbl := AblationCapability(tiny); tbl == nil {
		t.Fatal("capability ablation empty")
	} else {
		off, _ := tbl.Get(0, "mean latency (us)")
		on, _ := tbl.Get(1, "mean latency (us)")
		if on <= off {
			t.Errorf("capabilities should add latency: off %.1f on %.1f", off, on)
		}
	}
	if tbl := AblationBatchIO(tiny); tbl == nil {
		t.Fatal("batch ablation empty")
	} else {
		b1, _ := tbl.Get(1, "client us/read")
		b64, _ := tbl.Get(64, "client us/read")
		if b64 >= b1 {
			t.Errorf("batching should amortize client cost: %.1f vs %.1f", b1, b64)
		}
	}
}

func TestAblationTLBMonotone(t *testing.T) {
	tbl := AblationTLB(Scale(0.02))
	lo, _ := tbl.Get(9, "mean latency (us)")
	hi, _ := tbl.Get(9000, "mean latency (us)")
	if hi <= lo {
		t.Errorf("latency should grow with TLB miss cost: %.0f vs %.0f", lo, hi)
	}
	miss, _ := tbl.Get(9, "miss rate %")
	if miss < 50 {
		t.Errorf("thrashing config should miss heavily, got %.0f%%", miss)
	}
}

func TestAblationWriteRatioShrinksAdvantage(t *testing.T) {
	tbl := AblationWriteRatio(Scale(0.05))
	adv := func(pct float64) float64 {
		o, _ := tbl.Get(pct, "ODAFS")
		d, _ := tbl.Get(pct, "DAFS")
		return o / d
	}
	allReads, halfWrites := adv(100), adv(50)
	if allReads <= 1.0 {
		t.Errorf("ODAFS should win at 100%% reads: advantage %.2f", allReads)
	}
	if halfWrites >= allReads {
		t.Errorf("write traffic should shrink ODAFS's advantage: %.2f -> %.2f", allReads, halfWrites)
	}
}

func TestAblationSuccessRateConverges(t *testing.T) {
	tbl := AblationSuccessRate(Scale(0.02))
	o100, _ := tbl.Get(100, "ODAFS")
	d100, _ := tbl.Get(100, "DAFS")
	o25, _ := tbl.Get(25, "ODAFS")
	d25, _ := tbl.Get(25, "DAFS")
	if o100 <= d100 {
		t.Errorf("with valid refs ODAFS %.1f <= DAFS %.1f", o100, d100)
	}
	// At low validity both are disk-dominated: the gap narrows (§4.2.2).
	gapHigh := o100 / d100
	gapLow := o25 / d25
	if gapLow >= gapHigh {
		t.Errorf("ODAFS advantage should shrink with success rate: %.2f -> %.2f", gapHigh, gapLow)
	}
}
