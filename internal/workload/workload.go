// Package workload provides the application-level drivers the paper's
// evaluation uses: a streaming reader with application-level asynchronous
// read-ahead (Figures 3, 4 and 7) and a multi-client small-I/O driver.
package workload

import (
	"fmt"

	"danas/internal/nas"
	"danas/internal/sim"
)

// StreamConfig shapes a streaming read run.
type StreamConfig struct {
	File      string
	BlockSize int64
	// Window is the number of simultaneously outstanding reads — the
	// paper's clients perform "asynchronous read-ahead without any data
	// processing" via the DAFS and POSIX aio APIs.
	Window int
	// Passes over the file (the server-throughput experiments read the
	// file twice and measure the second pass).
	Passes int
	// StartOff staggers the pass: reading starts at the block containing
	// StartOff and wraps around so the whole file is still covered once
	// per pass. Multi-client sharded runs stagger clients so they don't
	// convoy on the same shard sequence in lockstep. 0 = sequential from
	// the start (the default, identical to the unstaggered behaviour).
	StartOff int64
	// PerOp, when non-nil, observes the response time of every block
	// read (the scale-out experiment's per-op latency series).
	PerOp func(sim.Duration)
}

// StreamResult reports one pass.
type StreamResult struct {
	Bytes   int64
	Ops     int64
	Elapsed sim.Duration
}

// MBps returns throughput in MB/s (10^6 bytes/s, the paper's unit).
func (r StreamResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// Stream sequentially reads the file Passes times with Window outstanding
// block reads, returning one result per pass.
func Stream(p *sim.Proc, c nas.Client, cfg StreamConfig) ([]StreamResult, error) {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	h, err := c.Open(p, cfg.File)
	if err != nil {
		return nil, err
	}
	defer c.Close(p, h)
	s := p.Sched()
	numBlocks := (h.Size + cfg.BlockSize - 1) / cfg.BlockSize
	var startBlock int64
	if cfg.StartOff > 0 && numBlocks > 0 {
		startBlock = (cfg.StartOff / cfg.BlockSize) % numBlocks
	}
	results := make([]StreamResult, 0, cfg.Passes)
	for pass := 0; pass < cfg.Passes; pass++ {
		start := p.Now()
		var next int64
		var total int64
		var ops int64
		var firstErr error
		done := sim.NewSignal(s)
		remaining := cfg.Window
		for w := 0; w < cfg.Window; w++ {
			bufID := uint64(w + 1)
			s.Go(fmt.Sprintf("stream-w%d", w), func(wp *sim.Proc) {
				defer func() {
					remaining--
					if remaining == 0 {
						done.Fire()
					}
				}()
				for {
					k := next
					if k >= numBlocks {
						return
					}
					next++
					off := ((startBlock + k) % numBlocks) * cfg.BlockSize
					opStart := wp.Now()
					n, err := c.Read(wp, h, off, cfg.BlockSize, bufID)
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						return
					}
					if cfg.PerOp != nil {
						cfg.PerOp(wp.Now().Sub(opStart))
					}
					total += n
					ops++
				}
			})
		}
		done.Wait(p)
		if firstErr != nil {
			return nil, firstErr
		}
		results = append(results, StreamResult{Bytes: total, Ops: ops, Elapsed: p.Now().Sub(start)})
	}
	return results, nil
}

// SmallIOConfig shapes a fixed-count random small-read driver (per-client).
type SmallIOConfig struct {
	File       string
	IOSize     int64
	Count      int
	Window     int
	Seed       uint64
	Sequential bool
}

// SmallIO issues Count reads of IOSize (random or sequential offsets) with
// Window outstanding, returning aggregate bytes and elapsed time.
func SmallIO(p *sim.Proc, c nas.Client, cfg SmallIOConfig) (StreamResult, error) {
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	h, err := c.Open(p, cfg.File)
	if err != nil {
		return StreamResult{}, err
	}
	defer c.Close(p, h)
	s := p.Sched()
	rng := sim.NewRand(cfg.Seed + 99)
	blocks := h.Size / cfg.IOSize
	if blocks <= 0 {
		return StreamResult{}, fmt.Errorf("workload: file smaller than I/O size")
	}
	offs := make([]int64, cfg.Count)
	for i := range offs {
		if cfg.Sequential {
			offs[i] = (int64(i) % blocks) * cfg.IOSize
		} else {
			offs[i] = rng.Int63n(blocks) * cfg.IOSize
		}
	}
	start := p.Now()
	var total int64
	var ops int64
	var firstErr error
	idx := 0
	done := sim.NewSignal(s)
	remaining := cfg.Window
	for w := 0; w < cfg.Window; w++ {
		bufID := uint64(w + 101)
		s.Go(fmt.Sprintf("smallio-w%d", w), func(wp *sim.Proc) {
			defer func() {
				remaining--
				if remaining == 0 {
					done.Fire()
				}
			}()
			for {
				if idx >= len(offs) {
					return
				}
				off := offs[idx]
				idx++
				n, err := c.Read(wp, h, off, cfg.IOSize, bufID)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				total += n
				ops++
			}
		})
	}
	done.Wait(p)
	if firstErr != nil {
		return StreamResult{}, firstErr
	}
	return StreamResult{Bytes: total, Ops: ops, Elapsed: p.Now().Sub(start)}, nil
}
