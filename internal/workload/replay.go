package workload

import (
	"fmt"

	"danas/internal/metrics"
	"danas/internal/nas"
	"danas/internal/obs"
	"danas/internal/sim"
	"danas/internal/trace"
)

// ReplayResult reports one open-loop trace replay.
type ReplayResult struct {
	// Ops, Bytes and Errors cover completed operations.
	Ops    int64
	Bytes  int64
	Errors int64
	// Stalls counts operations whose submission was delayed past their
	// recorded arrival time because the queue was full. A truly
	// open-loop run has zero; a nonzero count means the protocol fell
	// far enough behind to exhaust the queue depth and the remaining
	// issue times are distorted (closed-loop back-pressure).
	Stalls int64
	// MaxOutstanding is the deepest the submission queue actually got,
	// observed at each submission instant.
	MaxOutstanding int
	// Issues[i] is the instant record i was actually submitted; in an
	// open-loop run it equals Start + trace[i].At exactly.
	Issues []sim.Time
	// OpDone[i], OpErr[i] and OpBytes[i] record each trace record's
	// completion instant, error, and bytes moved — the failure
	// experiment slices these into before/during/after-fault windows.
	OpDone  []sim.Time
	OpErr   []error
	OpBytes []int64
	// Start is when the replay clock started; Elapsed spans from Start
	// to the last completion.
	Start   sim.Time
	Elapsed sim.Duration
	// Lat holds per-operation response times measured from each
	// record's scheduled arrival (not its possibly-delayed submission)
	// to its completion, so queueing delay counts — the open-loop
	// convention that avoids coordinated omission.
	Lat metrics.Hist
}

// MBps returns completed-byte throughput over the replay in MB/s (10^6
// bytes per second, the paper's unit).
func (r *ReplayResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// Replay drives an open-loop replay of tr over ac: every record is
// submitted at its recorded arrival time regardless of completions —
// a slow protocol accumulates queued operations instead of distorting
// subsequent issue times — while a collector process reaps completions
// and accumulates latency percentiles. Submission only stalls if the
// async client's bounded queue fills (reported via Stalls). Files named
// by the trace must already exist; they are opened before the clock
// starts and closed after the last completion. The returned error is
// the first open failure or per-operation error.
func Replay(p *sim.Proc, ac nas.AsyncClient, tr trace.Trace) (*ReplayResult, error) {
	return ReplayWith(p, ac, tr, nil)
}

// ReplayWith is Replay with a hook that runs at the instant the replay
// clock starts (after the files are opened, before the first record is
// issued) — the failure experiments arm their fault schedules there so
// event offsets are relative to the same origin as the trace's recorded
// arrival times.
func ReplayWith(p *sim.Proc, ac nas.AsyncClient, tr trace.Trace, onStart func(start sim.Time)) (*ReplayResult, error) {
	return ReplayObserved(p, ac, tr, onStart, nil)
}

// ReplayObserved is ReplayWith with per-operation tracing: when rc is
// non-nil every trace record gets a span starting at its scheduled
// arrival, carried through the protocol stack by the async client, and
// finalized (end instant, error flag) as its completion is collected.
// Submission delay past the scheduled arrival — the queue was full —
// is attributed to the span's queue phase. A nil rc is exactly the
// untraced replay: no spans are allocated and no hook fires.
func ReplayObserved(p *sim.Proc, ac nas.AsyncClient, tr trace.Trace, onStart func(start sim.Time), rc *obs.Recorder) (*ReplayResult, error) {
	res := &ReplayResult{
		Issues:  make([]sim.Time, len(tr)),
		OpDone:  make([]sim.Time, len(tr)),
		OpErr:   make([]error, len(tr)),
		OpBytes: make([]int64, len(tr)),
	}
	if len(tr) == 0 {
		return res, nil
	}
	extents := tr.Extents()
	handles := make(map[string]*nas.Handle, len(extents))
	opened := make([]*nas.Handle, 0, len(extents))
	defer func() {
		for _, h := range opened {
			ac.Close(p, h)
		}
	}()
	for _, ext := range extents {
		h, err := ac.Open(p, ext.File)
		if err != nil {
			return res, fmt.Errorf("replay: open %s: %w", ext.File, err)
		}
		handles[ext.File] = h
		opened = append(opened, h)
	}

	start := p.Now()
	res.Start = start
	if onStart != nil {
		onStart(start)
	}
	// recIdx maps a submission tag back to its trace record, from which
	// the scheduled arrival (start + record.At) derives. The scheduler
	// runs one process at a time and the submitter stores the tag
	// before yielding, so the collector always finds it.
	recIdx := make(map[uint64]int, len(tr))
	var spans []*obs.Span
	if rc != nil {
		spans = make([]*obs.Span, len(tr))
	}
	var firstErr error
	var lastDone sim.Time
	collected := 0
	done := sim.NewSignal(p.Sched())
	p.Sched().Go("replay-collect", func(wp *sim.Proc) {
		for collected < len(tr) {
			for _, comp := range ac.Wait(wp) {
				collected++
				res.Ops++
				res.Bytes += comp.N
				if comp.Err != nil {
					res.Errors++
					if firstErr == nil {
						firstErr = comp.Err
					}
				}
				if i, ok := recIdx[comp.Tag]; ok {
					res.Lat.Observe(comp.Done.Sub(start.Add(tr[i].At)))
					res.OpDone[i] = comp.Done
					res.OpErr[i] = comp.Err
					res.OpBytes[i] = comp.N
					if spans != nil {
						if sp := spans[i]; sp != nil {
							sp.End = comp.Done
							sp.Err = comp.Err != nil
						}
					}
					delete(recIdx, comp.Tag)
				}
				if comp.Done > lastDone {
					lastDone = comp.Done
				}
			}
		}
		done.Fire()
	})
	depth := uint64(ac.Depth())
	for i, rec := range tr {
		target := start.Add(rec.At)
		if now := p.Now(); now < target {
			p.Sleep(target.Sub(now))
		}
		var sp *obs.Span
		if rc != nil {
			sp = rc.NewSpan(i, rec.Kind.String(), target)
			spans[i] = sp
		}
		tag := ac.Submit(p, nas.Op{
			Kind: rec.Kind,
			H:    handles[rec.File],
			Off:  rec.Off,
			N:    rec.Size,
			// Cycle through Depth buffer identities, modelling a
			// depth-sized pool of application buffers.
			BufID: 1 + uint64(i)%depth,
			Span:  sp,
		})
		recIdx[tag] = i
		res.Issues[i] = p.Now()
		if p.Now() > target {
			res.Stalls++
			// The span opens at the scheduled arrival: time lost waiting
			// for a queue slot is the operation's queue phase.
			sp.Add(obs.PhaseQueue, p.Now().Sub(target))
		}
		if o := ac.Outstanding(); o > res.MaxOutstanding {
			res.MaxOutstanding = o
		}
	}
	done.Wait(p)
	res.Elapsed = lastDone.Sub(start)
	return res, firstErr
}
