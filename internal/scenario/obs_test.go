package scenario

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"danas/internal/exper"
	"danas/internal/obs"
)

// probe is the scale the write-mix regime expectations were pinned at;
// the regimes (which phase dominates which mix) are scale-stable but
// the pinned dominance margins are not, so the regression runs here.
const probe = exper.Scale(0.05)

// TestAssertArgedCodec pins the two-operand assertion syntax: the kind,
// a token argument, then the threshold, round-tripping through Encode.
func TestAssertArgedCodec(t *testing.T) {
	src := strings.Join([]string{
		"scenario obs-asserts",
		"fleet shards=2 system=odafs",
		"assert max-phase-ms stall 5",
		"assert max-gauge trunk-util 0.95",
		"assert min-mbps 1",
	}, "\n")
	sp, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Assert{
		{Kind: AssertMaxPhaseMs, Arg: "stall", Value: 5},
		{Kind: AssertMaxGauge, Arg: "trunk-util", Value: 0.95},
		{Kind: AssertMinMBps, Value: 1},
	}
	if len(sp.Asserts) != len(want) {
		t.Fatalf("parsed %d asserts, want %d", len(sp.Asserts), len(want))
	}
	for i, a := range sp.Asserts {
		if a != want[i] {
			t.Errorf("assert %d = %+v, want %+v", i, a, want[i])
		}
	}
	enc := Encode(sp)
	for _, line := range []string{"assert max-phase-ms stall 5", "assert max-gauge trunk-util 0.95"} {
		if !strings.Contains(enc, line) {
			t.Errorf("encoded form missing %q:\n%s", line, enc)
		}
	}
	back, err := Parse(enc)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	for i, a := range back.Asserts {
		if a != want[i] {
			t.Errorf("round-tripped assert %d = %+v, want %+v", i, a, want[i])
		}
	}
}

// TestAssertArgedParseErrors pins the shape rejections for arged
// kinds. Parse errors are *ParseError messages (the codec flattens the
// sentinel phrasing into the line-pinned message), so the checks match
// the rendered text like the codec's own golden tests.
func TestAssertArgedParseErrors(t *testing.T) {
	head := "scenario x\nfleet shards=1 system=nfs\n"
	cases := []struct {
		name, line, want string
	}{
		{"missing both", "assert max-phase-ms", ErrArgValue.Error()},
		{"missing value", "assert max-phase-ms stall", ErrArgValue.Error()},
		{"extra token", "assert max-gauge cpu-util 1 2", ErrArgValue.Error()},
		{"bad threshold", "assert max-phase-ms stall fast", `bad threshold "fast"`},
	}
	for _, c := range cases {
		_, err := Parse(head + c.line)
		if err == nil {
			t.Errorf("%s: parsed", c.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error is %T, want *ParseError", c.name, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want %q in it", c.name, err, c.want)
		}
	}
}

// TestValidateObsAsserts pins the semantic pass over assertion
// arguments: phase and gauge tokens are checked statically, before
// anything runs.
func TestValidateObsAsserts(t *testing.T) {
	check := func(a Assert) error {
		sp := valid()
		sp.Asserts = []Assert{a}
		return sp.Validate()
	}
	if err := check(Assert{Kind: AssertMaxPhaseMs, Arg: "stall", Value: 5}); err != nil {
		t.Errorf("valid max-phase-ms rejected: %v", err)
	}
	if err := check(Assert{Kind: AssertMaxGauge, Arg: "cpu-util", Value: 1}); err != nil {
		t.Errorf("valid max-gauge rejected: %v", err)
	}
	if err := check(Assert{Kind: AssertMaxPhaseMs, Arg: "bogus", Value: 5}); err == nil ||
		!strings.Contains(err.Error(), "unknown phase") {
		t.Errorf("unknown phase error = %v", err)
	}
	if err := check(Assert{Kind: AssertMaxGauge, Arg: "bogus", Value: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown gauge class") {
		t.Errorf("unknown gauge class error = %v", err)
	}
	if err := check(Assert{Kind: AssertMinMBps, Arg: "stall", Value: 1}); err == nil ||
		!strings.Contains(err.Error(), "takes no argument") {
		t.Errorf("argument on an unarged kind error = %v", err)
	}
	if err := check(Assert{Kind: AssertMaxPhaseMs, Arg: "stall", Value: -1}); err == nil ||
		!strings.Contains(err.Error(), "negative threshold") {
		t.Errorf("negative threshold error = %v", err)
	}
}

// TestRunObsAsserts runs a spec whose assertions read the observability
// layer: the run must arm tracing by itself, evaluate both kinds, and
// mark the report observed.
func TestRunObsAsserts(t *testing.T) {
	sp := valid()
	sp.Asserts = []Assert{
		// Generous bounds that a healthy tiny run satisfies.
		{Kind: AssertMaxPhaseMs, Arg: "retry", Value: 10_000},
		{Kind: AssertMaxGauge, Arg: "cpu-util", Value: 1},
		// An impossible bound that must fail with a measured value.
		{Kind: AssertMaxGauge, Arg: "async-depth", Value: -0.0},
	}
	if !sp.NeedsObs() {
		t.Fatal("spec with obs asserts reports NeedsObs false")
	}
	rep, err := Run(sp, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Observed {
		t.Error("run with obs asserts is not marked observed")
	}
	if rep.Breakdown.N == 0 {
		t.Error("observed run has an empty breakdown")
	}
	if !rep.Results[0].Ok || !rep.Results[1].Ok {
		t.Errorf("generous obs bounds failed: %+v", rep.Results[:2])
	}
	if rep.Results[2].Ok {
		t.Error("zero async-depth bound passed on a loaded run")
	}
	if rep.Results[2].Got <= 0 {
		t.Errorf("async-depth measured %g, want > 0", rep.Results[2].Got)
	}
	out := rep.Format()
	for _, want := range []string{"assert max-gauge async-depth", "phase(us)", "dominant="} {
		if !strings.Contains(out, want) {
			t.Errorf("observed report missing %q:\n%s", want, out)
		}
	}
}

// TestRunUntracedByDefault pins the zero-cost default: a spec without
// obs assertions runs unobserved and its report carries no breakdown.
func TestRunUntracedByDefault(t *testing.T) {
	sp := valid()
	rep, err := Run(sp, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observed || rep.Breakdown.N != 0 || rep.FlightOps != 0 {
		t.Errorf("untraced run leaked observability state: %+v", rep)
	}
	if strings.Contains(rep.Format(), "phase(us)") {
		t.Error("untraced report renders a phase table")
	}
}

// TestRunExportsDeterministic runs the same observed scenario twice and
// requires byte-identical trace and telemetry exports.
func TestRunExportsDeterministic(t *testing.T) {
	render := func() (string, string) {
		crash, _ := Lookup("crash-recovery")
		var tr, tel bytes.Buffer
		rep, err := RunObserved(crash, tiny, RunOpts{TraceOut: &tr, TelemetryOut: &tel})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Observed {
			t.Fatal("export run not observed")
		}
		if rep.FlightOps == 0 {
			t.Error("faulted observed run retained no flight spans")
		}
		return tr.String(), tel.String()
	}
	tr1, tel1 := render()
	tr2, tel2 := render()
	if tr1 != tr2 {
		t.Error("trace export differs across reruns")
	}
	if tel1 != tel2 {
		t.Error("telemetry export differs across reruns")
	}
	if !strings.HasPrefix(tr1, `{"displayTimeUnit":"ms","traceEvents":[`) {
		t.Errorf("trace export is not trace-event JSON:\n%.120s", tr1)
	}
	if !strings.HasPrefix(tel1, "time_us\t") {
		t.Errorf("telemetry export is not the TSV dump:\n%.120s", tel1)
	}
}

// TestWriteMixBreakdownRegimes is the write-mix phase-attribution
// regression: in the destage-limited regime (write-heavy, water marks
// throttling) the p99 tail is dominated by the stall phase, while the
// read-limited regime's tail is wire/server time — the simulated
// counterpart of the paper's cost attribution argument.
func TestWriteMixBreakdownRegimes(t *testing.T) {
	const shards = 4
	destage := WriteMixBreakdown("NFS", shards, 0.1, probe)
	if got := destage.DominantTail(); got != "stall" {
		t.Errorf("destage-limited dominant tail = %q, want stall\n%s", got, destage.Format())
	}
	stall := destage.TailMicros[obs.PhaseStall]
	if stall < 0.5*destage.P99Micros {
		t.Errorf("destage-limited stall tail %.0fus < half of p99 %.0fus", stall, destage.P99Micros)
	}

	read := WriteMixBreakdown("DAFS", shards, 1.0, probe)
	if got := read.DominantTail(); got != "wire" && got != "server" {
		t.Errorf("read-limited dominant tail = %q, want wire or server\n%s", got, read.Format())
	}
	if got := read.TailMicros[obs.PhaseStall]; got != 0 {
		t.Errorf("read-limited tail has %.0fus stall, want none", got)
	}
	if read.P99Micros >= destage.P99Micros {
		t.Errorf("read-limited p99 %.0fus >= destage-limited p99 %.0fus", read.P99Micros, destage.P99Micros)
	}
}

// TestWriteMixUnchangedByTracing pins the non-perturbation contract on
// a real experiment cell: the measured results of a traced run equal
// the untraced run's exactly (tracing adds no simulation events; only
// telemetry sampling would).
func TestWriteMixUnchangedByTracing(t *testing.T) {
	spec := WriteMixSpec("NFS", 2, 0.5)
	plain, err := Run(spec, tiny)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := RunObserved(WriteMixSpec("NFS", 2, 0.5), tiny, RunOpts{Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.M, traced.M) {
		t.Errorf("tracing changed the measurements:\nplain:  %+v\ntraced: %+v", plain.M, traced.M)
	}
}

// TestObservedScenarioExercisesSampler covers the gauge set on a spec
// with write-behind and a fabric, where every gauge class can appear.
func TestObservedScenarioExercisesSampler(t *testing.T) {
	sp := valid()
	sp.Fleet = Fleet{Shards: 4, System: "odafs", Depth: 16}
	sp.Fabric = FabricSpec{Leaves: 2, Spines: 1}
	sp.WB = WriteBehind{Enabled: true, Auto: true}
	sp.Workload.ReadFrac = 0.3
	sp.Asserts = []Assert{
		{Kind: AssertMaxGauge, Arg: "trunk-util", Value: 1},
		{Kind: AssertMaxGauge, Arg: "dirty-blocks", Value: 1e9},
		{Kind: AssertMaxGauge, Arg: "wb-throttle", Value: 1},
	}
	rep, err := Run(sp, tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if !res.Ok {
			t.Errorf("gauge assert %s failed (got %g)", res.Assert, res.Got)
		}
	}
	// A write-heavy run must actually dirty the cache.
	if rep.Results[1].Got <= 0 {
		t.Error("dirty-blocks gauge never read nonzero")
	}
}
