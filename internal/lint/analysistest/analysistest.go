// Package analysistest runs one analyzer over a fixture package under
// testdata/src and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest (which cannot
// be vendored in this offline build environment).
//
// A fixture is a directory testdata/src/<import/path>/ whose files
// are type-checked as <import/path>. Expectations are comments:
//
//	m := map[int]int{} // no comment: no diagnostic expected here
//	for k := range m { // want `map iteration`
//
// Each backquoted or double-quoted string after "// want" is a regexp
// that must match a diagnostic reported on that line; diagnostics
// with no matching want, and wants with no matching diagnostic, fail
// the test. Fixtures may only import the standard library.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"danas/internal/lint/analysis"
	"danas/internal/lint/load"
)

// Run analyzes the fixture package at testdata/src/<importPath> with
// a and compares diagnostics against its // want comments.
func Run(t *testing.T, a *analysis.Analyzer, importPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if perr != nil {
			t.Fatalf("parsing fixture: %v", perr)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", importPath)
	}

	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if strings.HasPrefix(p, "danas") {
				t.Fatalf("fixture %s imports %s; fixtures must stick to the standard library", importPath, p)
			}
			imports = append(imports, p)
		}
	}
	exports, err := load.StdExports(".", imports)
	if err != nil {
		t.Fatalf("building std export data: %v", err)
	}
	pkg, err := load.CheckFiles(importPath, dir, fset, files, exports)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	var got []analysis.Diagnostic
	pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info,
		func(d analysis.Diagnostic) { got = append(got, d) })
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	analysis.SortDiagnostics(fset, got)

	wants := collectWants(t, fset, files)
	matched := make([]bool, len(wants))
	for _, d := range got {
		pos := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE pulls the quoted or backquoted patterns off a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				pats := wantRE.FindAllString(rest, -1)
				if len(pats) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, p := range pats {
					var pat string
					if p[0] == '`' {
						pat = p[1 : len(p)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(p)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, p, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{pos.Filename, pos.Line, re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// NoDiagnostics asserts the analyzer is silent on the fixture — the
// "pass" half of a trigger/pass fixture pair. With no want comments
// present, Run already fails on any diagnostic; the explicit name
// documents the fixture's intent at the call site.
func NoDiagnostics(t *testing.T, a *analysis.Analyzer, importPath string) {
	t.Helper()
	Run(t, a, importPath)
}
