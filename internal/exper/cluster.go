// Package exper is the benchmark harness: one experiment per table and
// figure of the paper's evaluation (§5), each regenerating the same
// rows/series the paper reports, plus ablations of the design choices
// DESIGN.md calls out. The cmd/danas-bench binary and the root-level
// testing.B benchmarks both drive this package.
package exper

import (
	"fmt"

	"danas/internal/core"
	"danas/internal/dafs"
	"danas/internal/fsim"
	"danas/internal/host"
	"danas/internal/nas"
	"danas/internal/netsim"
	"danas/internal/nfs"
	"danas/internal/nic"
	"danas/internal/sim"
	"danas/internal/udpip"
)

// Scale shrinks experiment file sizes and operation counts uniformly so
// tests run fast; 1.0 is the benchmark default (which is itself reduced
// from paper scale — the steady states are identical, see DESIGN.md §2).
type Scale float64

func (s Scale) bytes(n int64) int64 {
	v := int64(float64(n) * float64(s))
	if v < 1<<16 {
		v = 1 << 16
	}
	return v
}

func (s Scale) count(n int) int {
	v := int(float64(n) * float64(s))
	if v < 16 {
		v = 16
	}
	return v
}

// ClusterConfig describes the simulated testbed.
type ClusterConfig struct {
	Params *host.Params
	// Clients is the number of client hosts.
	Clients int
	// ServerCacheBlockSize and ServerCacheBlocks shape the server file
	// cache.
	ServerCacheBlockSize int64
	ServerCacheBlocks    int
	// Optimistic creates an ODAFS-capable DAFS server.
	Optimistic bool
	// NFS adds an NFS/UDP server alongside the DAFS server.
	NFS bool
	// NFSWorkers is the nfsd worker pool size.
	NFSWorkers int
}

// DefaultClusterConfig mirrors the paper's testbed: four PCs, 2 Gb/s
// Myrinet (we allocate clients on demand).
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Params:               host.Default(),
		Clients:              1,
		ServerCacheBlockSize: 16 * 1024,
		ServerCacheBlocks:    1 << 17,
		Optimistic:           true,
		NFS:                  true,
		NFSWorkers:           8,
	}
}

// ClientNode is one client machine.
type ClientNode struct {
	Host  *host.Host
	NIC   *nic.NIC
	Stack *udpip.Stack
}

// Cluster is the assembled testbed.
type Cluster struct {
	S   *sim.Scheduler
	P   *host.Params
	Fab *netsim.Fabric

	ServerHost  *host.Host
	ServerNIC   *nic.NIC
	ServerStack *udpip.Stack
	FS          *fsim.FS
	Disk        *fsim.Disk
	ServerCache *fsim.ServerCache

	DAFSServer *dafs.Server
	NFSServer  *nfs.Server

	Nodes []*ClientNode

	nextNFSPort int
}

// NewCluster builds the testbed.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Params == nil {
		cfg.Params = host.Default()
	}
	s := sim.New()
	p := cfg.Params
	fab := netsim.NewFabric(s, p.SwitchLatency)
	line := netsim.LineConfig{Bandwidth: p.LinkBandwidth, Overhead: p.FrameOverhead, PropDelay: p.LinkPropDelay}

	c := &Cluster{S: s, P: p, Fab: fab, nextNFSPort: 900}
	c.ServerHost = host.New(s, "server", p)
	c.ServerNIC = nic.New(c.ServerHost, fab.AddPort("server", line))
	c.ServerStack = udpip.NewStack(c.ServerNIC)
	c.FS = fsim.NewFS()
	c.Disk = fsim.NewDisk(s, "disk", p.DiskSeek, p.DiskBW)
	c.ServerCache = fsim.NewServerCache(c.FS, c.Disk, cfg.ServerCacheBlockSize, cfg.ServerCacheBlocks)
	c.DAFSServer = dafs.NewServer(s, c.ServerNIC, c.FS, c.ServerCache, cfg.Optimistic)
	if cfg.NFS {
		c.NFSServer = nfs.NewServer(s, c.ServerStack, c.FS, c.ServerCache, cfg.NFSWorkers)
	}
	for i := 0; i < cfg.Clients; i++ {
		c.AddClientNode()
	}
	return c
}

// AddClientNode attaches another client machine to the fabric.
func (c *Cluster) AddClientNode() *ClientNode {
	name := fmt.Sprintf("client%d", len(c.Nodes)+1)
	line := netsim.LineConfig{Bandwidth: c.P.LinkBandwidth, Overhead: c.P.FrameOverhead, PropDelay: c.P.LinkPropDelay}
	h := host.New(c.S, name, c.P)
	n := nic.New(h, c.Fab.AddPort(name, line))
	node := &ClientNode{Host: h, NIC: n, Stack: udpip.NewStack(n)}
	c.Nodes = append(c.Nodes, node)
	return node
}

// Close tears down the simulation.
func (c *Cluster) Close() { c.S.Close() }

// NFSClient mounts an NFS client of the given kind on node i.
func (c *Cluster) NFSClient(i int, kind nfs.Kind) *nfs.Client {
	c.nextNFSPort++
	return nfs.NewClient(c.S, c.Nodes[i].Stack, c.nextNFSPort, c.ServerStack, kind)
}

// DAFSClient mounts a raw (uncached) DAFS client on node i.
func (c *Cluster) DAFSClient(i int, mode nic.NotifyMode, tm dafs.TransferMode) *dafs.Client {
	return dafs.NewClient(c.S, c.Nodes[i].NIC, c.DAFSServer, mode, tm)
}

// CachedClient mounts a cached DAFS/ODAFS client on node i.
func (c *Cluster) CachedClient(i int, cfg core.Config) *core.Client {
	return core.NewClient(c.S, c.Nodes[i].NIC, c.DAFSServer, nic.Poll, cfg)
}

// CreateWarmFile creates a synthetic file and warms the server cache with
// it — the experiments' "file warm in the server cache" precondition —
// then pre-warms the NIC TLB when the server is optimistic (§5.2).
func (c *Cluster) CreateWarmFile(name string, size int64) *fsim.File {
	f, err := c.FS.Create(name, size)
	if err != nil {
		panic(err)
	}
	c.ServerCache.Warm(f)
	c.ServerNIC.TPT.WarmTLB()
	return f
}

// Run drives the simulation until quiescent.
func (c *Cluster) Run() { c.S.Run() }

// Go spawns a root process.
func (c *Cluster) Go(name string, fn func(p *sim.Proc)) { c.S.Go(name, fn) }

// clientFor builds the requested nas.Client by system name on node i.
// Recognized names match the paper's figure legends.
func (c *Cluster) clientFor(system string, i int) nas.Client {
	switch system {
	case "NFS":
		return c.NFSClient(i, nfs.Standard)
	case "NFS pre-posting":
		return c.NFSClient(i, nfs.PrePosting)
	case "NFS hybrid":
		return c.NFSClient(i, nfs.Hybrid)
	case "DAFS":
		return c.DAFSClient(i, nic.Poll, dafs.Direct)
	default:
		panic("exper: unknown system " + system)
	}
}

// Systems lists the Figure 3/4/5 legend order.
var Systems = []string{"NFS", "NFS pre-posting", "NFS hybrid", "DAFS"}
