package sim

import (
	"testing"
	"testing/quick"
)

func TestStationFIFO(t *testing.T) {
	s := New()
	defer s.Close()
	st := NewStation(s, "st")
	var done []Time
	record := func() { done = append(done, s.Now()) }
	st.Serve(10*Microsecond, record)
	st.Serve(5*Microsecond, record)
	st.Serve(1*Microsecond, record)
	s.Run()
	want := []Time{Time(10 * Microsecond), Time(15 * Microsecond), Time(16 * Microsecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestStationIdleGap(t *testing.T) {
	s := New()
	defer s.Close()
	st := NewStation(s, "st")
	var second Time
	st.Serve(10*Microsecond, nil)
	s.After(50*Microsecond, func() {
		st.Serve(10*Microsecond, func() { second = s.Now() })
	})
	s.Run()
	if second != Time(60*Microsecond) {
		t.Fatalf("second job done at %v, want 60us", second)
	}
}

func TestStationServeAt(t *testing.T) {
	s := New()
	defer s.Close()
	st := NewStation(s, "st")
	var fin Time
	// Job ready at t=20us although submitted at t=0.
	st.ServeAt(Time(20*Microsecond), 5*Microsecond, func() { fin = s.Now() })
	s.Run()
	if fin != Time(25*Microsecond) {
		t.Fatalf("done at %v, want 25us", fin)
	}
}

func TestStationServeAtQueuesBehindBacklog(t *testing.T) {
	s := New()
	defer s.Close()
	st := NewStation(s, "st")
	st.Serve(30*Microsecond, nil)
	var fin Time
	st.ServeAt(Time(10*Microsecond), 5*Microsecond, func() { fin = s.Now() })
	s.Run()
	if fin != Time(35*Microsecond) {
		t.Fatalf("done at %v, want 35us (behind backlog)", fin)
	}
}

func TestStationWait(t *testing.T) {
	s := New()
	defer s.Close()
	st := NewStation(s, "cpu")
	var woke Time
	s.Go("w", func(p *Proc) {
		st.Wait(p, 7*Microsecond)
		woke = p.Now()
	})
	s.Run()
	if woke != Time(7*Microsecond) {
		t.Fatalf("woke at %v, want 7us", woke)
	}
}

func TestStationUtilization(t *testing.T) {
	s := New()
	defer s.Close()
	st := NewStation(s, "st")
	st.Serve(25*Microsecond, nil)
	s.After(100*Microsecond, func() {})
	s.Run()
	if u := st.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
	st.MarkEpoch()
	if st.BusyTime() != 0 {
		t.Fatal("MarkEpoch did not reset busy time")
	}
}

// Property: total completion time of a batch equals the sum of service
// times when submitted together (single server, work conserving).
func TestStationWorkConservingProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) == 0 || len(ds) > 64 {
			return true
		}
		s := New()
		defer s.Close()
		st := NewStation(s, "st")
		var total Duration
		var last Time
		for _, d := range ds {
			dur := Duration(d) * Nanosecond
			total += dur
			last = st.Serve(dur, func() {})
		}
		s.Run()
		return last == Time(total) && s.Now() == Time(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
