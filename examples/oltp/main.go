// OLTP: the paper's motivating small-I/O scenario — multiple clients
// hammering a server with 4 KB accesses (think transaction processing
// page reads). Demonstrates Figure 7's claim: with RPC-based DAFS the
// server CPU saturates long before the network; Optimistic DAFS moves the
// transfers to client-initiated ORDMA and saturates the 2 Gb/s link with
// the server CPU idle.
package main

import (
	"fmt"

	"danas"
	"danas/internal/workload"
)

func main() {
	const fileSize = 24 << 20
	const clients = 2

	for _, proto := range []danas.Protocol{danas.DAFS, danas.ODAFS} {
		// Size the server NIC TLB to the working set so ORDMA always hits
		// — the paper's §5.2 setup. (Undersize it to watch §4.2.2's
		// "low NIC TLB hit rates" limitation appear as server CPU.)
		params := danas.DefaultParams()
		params.NICTLBSize = int(fileSize/4096) + 1024
		cl := danas.NewCluster(danas.WithParams(params), danas.WithServerCache(4096, 1<<16))
		if err := cl.CreateWarmFile("table.dat", fileSize); err != nil {
			panic(fmt.Sprintf("oltp: create table: %v", err))
		}
		mounts := make([]*danas.Mount, clients)
		for i := range mounts {
			mounts[i] = cl.Mount(proto, danas.WithClientCache(4096, 512, 1<<16))
		}

		results := make([]workload.StreamResult, clients)
		warmed := 0
		barrier := danas.NewBarrier(cl)
		var startedAt danas.Time
		for i, m := range mounts {
			i, m := i, m
			cl.Go(fmt.Sprintf("oltp-client-%d", i), func(p *danas.Proc) {
				// Pass 1 populates caches and, for ODAFS, the directory.
				if _, err := workload.Stream(p, m.NASClient(), workload.StreamConfig{
					File: "table.dat", BlockSize: 64 * 1024, Window: 2, Passes: 1,
				}); err != nil {
					panic(fmt.Sprintf("oltp: warm stream: %v", err))
				}
				// Both clients start the measured phase together so the
				// server epoch sees only small-I/O traffic.
				warmed++
				if warmed == clients {
					cl.MarkServerEpoch()
					startedAt = p.Now()
					barrier.Release()
				}
				barrier.Wait(p)
				res, err := workload.SmallIO(p, m.NASClient(), workload.SmallIOConfig{
					File: "table.dat", IOSize: 4096, Count: 4000, Window: 4,
					Seed: uint64(i + 1),
				})
				if err != nil {
					panic(fmt.Sprintf("oltp: small io: %v", err))
				}
				results[i] = res
			})
		}
		cl.Run()

		var bytes int64
		for _, r := range results {
			bytes += r.Bytes
		}
		elapsed := cl.Now().Sub(startedAt)
		fmt.Printf("%-6s: %d clients x 4KB random reads -> %7.1f MB/s aggregate, server CPU %5.1f%%, link %5.1f%%\n",
			proto, clients,
			float64(bytes)/1e6/elapsed.Seconds(),
			100*cl.ServerCPUUtilization(),
			100*cl.ServerLinkTxUtilization())
		cl.Close()
	}
	fmt.Println("\nODAFS serves the same workload with the server CPU out of the data")
	fmt.Println("path entirely (paper §5.2: up to 32% more throughput, and the CPU")
	fmt.Println("freed for everything else).")
}
