package workload

import (
	"testing"

	"danas/internal/dafs"
	"danas/internal/fsim"
	"danas/internal/host"
	"danas/internal/netsim"
	"danas/internal/nic"
	"danas/internal/sim"
)

func rig(t *testing.T) (*sim.Scheduler, *fsim.FS, *fsim.ServerCache, *dafs.Client, *host.Host) {
	t.Helper()
	s := sim.New()
	t.Cleanup(s.Close)
	p := host.Default()
	fab := netsim.NewFabric(s, p.SwitchLatency)
	cfg := netsim.LineConfig{Bandwidth: p.LinkBandwidth, Overhead: p.FrameOverhead, PropDelay: p.LinkPropDelay}
	sh := host.New(s, "server", p)
	sn := nic.New(sh, fab.AddPort("server", cfg))
	fs := fsim.NewFS()
	disk := fsim.NewDisk(s, "disk", p.DiskSeek, p.DiskBW)
	sc := fsim.NewServerCache(fs, disk, 64*1024, 1<<16)
	srv := dafs.NewServer(s, sn, fs, sc, false)
	ch := host.New(s, "client", p)
	cn := nic.New(ch, fab.AddPort("client", cfg))
	return s, fs, sc, dafs.NewClient(s, cn, srv, nic.Poll, dafs.Direct), ch
}

func TestStreamReadsWholeFile(t *testing.T) {
	s, fs, sc, c, _ := rig(t)
	f, _ := fs.Create("data", 1<<22)
	sc.Warm(f)
	var res []StreamResult
	s.Go("app", func(p *sim.Proc) {
		var err error
		res, err = Stream(p, c, StreamConfig{File: "data", BlockSize: 64 * 1024, Window: 4, Passes: 2})
		if err != nil {
			t.Errorf("stream: %v", err)
		}
	})
	s.Run()
	if len(res) != 2 {
		t.Fatalf("passes %d", len(res))
	}
	for i, r := range res {
		if r.Bytes != 1<<22 {
			t.Fatalf("pass %d read %d bytes", i, r.Bytes)
		}
		if r.MBps() <= 0 {
			t.Fatalf("pass %d zero throughput", i)
		}
	}
}

// TestStreamStartOffCoversWholeFile checks a staggered pass still reads
// every block exactly once per pass: StartOff rotates where the pass
// begins but the coverage and byte count are unchanged, including when
// the file is not a whole number of blocks.
func TestStreamStartOffCoversWholeFile(t *testing.T) {
	const block = 64 * 1024
	for _, tc := range []struct {
		name     string
		size     int64
		startOff int64
	}{
		{"aligned start", 16 * block, 4 * block},
		{"unaligned start rounds to its block", 16 * block, 4*block + 17},
		{"start beyond file wraps", 16 * block, 100 * block},
		{"ragged tail", 16*block + 100, 8 * block},
		{"zero is the unstaggered pass", 16 * block, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, fs, sc, c, _ := rig(t)
			f, _ := fs.Create("data", tc.size)
			sc.Warm(f)
			var res []StreamResult
			s.Go("app", func(p *sim.Proc) {
				var err error
				res, err = Stream(p, c, StreamConfig{
					File: "data", BlockSize: block, Window: 2, Passes: 1, StartOff: tc.startOff,
				})
				if err != nil {
					t.Errorf("stream: %v", err)
				}
			})
			s.Run()
			numBlocks := (tc.size + block - 1) / block
			if res[0].Ops != numBlocks {
				t.Errorf("ops = %d, want %d (every block exactly once)", res[0].Ops, numBlocks)
			}
			if res[0].Bytes != tc.size {
				t.Errorf("bytes = %d, want %d", res[0].Bytes, tc.size)
			}
		})
	}
}

func TestStreamWindowPipelines(t *testing.T) {
	measure := func(window int) sim.Duration {
		s, fs, sc, c, _ := rig(t)
		f, _ := fs.Create("data", 1<<21)
		sc.Warm(f)
		var el sim.Duration
		s.Go("app", func(p *sim.Proc) {
			res, err := Stream(p, c, StreamConfig{File: "data", BlockSize: 16 * 1024, Window: window, Passes: 1})
			if err != nil {
				t.Errorf("stream: %v", err)
				return
			}
			el = res[0].Elapsed
		})
		s.Run()
		return el
	}
	if w8, w1 := measure(8), measure(1); w8 >= w1 {
		t.Fatalf("window 8 (%v) not faster than window 1 (%v)", w8, w1)
	}
}

func TestStreamMissingFile(t *testing.T) {
	s, _, _, c, _ := rig(t)
	s.Go("app", func(p *sim.Proc) {
		if _, err := Stream(p, c, StreamConfig{File: "ghost", BlockSize: 4096}); err == nil {
			t.Error("stream of missing file succeeded")
		}
	})
	s.Run()
}

func TestSmallIOSequentialAndRandom(t *testing.T) {
	for _, seq := range []bool{true, false} {
		s, fs, sc, c, _ := rig(t)
		f, _ := fs.Create("data", 1<<22)
		sc.Warm(f)
		s.Go("app", func(p *sim.Proc) {
			res, err := SmallIO(p, c, SmallIOConfig{
				File: "data", IOSize: 4096, Count: 64, Window: 4, Seed: 5, Sequential: seq,
			})
			if err != nil {
				t.Errorf("smallio(seq=%v): %v", seq, err)
				return
			}
			if res.Bytes != 64*4096 {
				t.Errorf("smallio(seq=%v) read %d bytes", seq, res.Bytes)
			}
		})
		s.Run()
	}
}

func TestSmallIOFileTooSmall(t *testing.T) {
	s, fs, _, c, _ := rig(t)
	fs.Create("tiny", 100)
	s.Go("app", func(p *sim.Proc) {
		if _, err := SmallIO(p, c, SmallIOConfig{File: "tiny", IOSize: 4096, Count: 4}); err == nil {
			t.Error("smallio on tiny file succeeded")
		}
	})
	s.Run()
}
