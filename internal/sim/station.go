package sim

// Station is a single-server FIFO queue with service times known at submit
// time: a CPU, a DMA engine, a link direction, a firmware processor. Unlike
// Resource it needs no process context — work is scheduled as an event chain
// — which keeps per-packet simulation cheap.
//
// Serve(d, done) enqueues a job of length d behind any outstanding work and
// calls done when it completes. The queue is work-conserving and
// non-preemptive.
type Station struct {
	s         *Scheduler
	name      string
	busyUntil Time
	epoch     Time
	busyInt   float64 // total service time scheduled since epoch
	jobs      uint64
}

// NewStation creates an idle station.
func NewStation(s *Scheduler, name string) *Station {
	return &Station{s: s, name: name, epoch: s.now}
}

// Name returns the station name.
func (st *Station) Name() string { return st.name }

// Serve schedules a job of duration d and returns its completion time.
// done (may be nil) runs at that time.
func (st *Station) Serve(d Duration, done func()) Time {
	if d < 0 {
		d = 0
	}
	start := st.s.now
	if st.busyUntil > start {
		start = st.busyUntil
	}
	fin := start.Add(d)
	st.busyUntil = fin
	st.busyInt += float64(d)
	st.jobs++
	if done != nil {
		st.s.At(fin, done)
	}
	return fin
}

// ServeAt is Serve for a job that only becomes ready at time ready (e.g. a
// fragment that arrives later). Work is scheduled at max(ready, queue tail).
func (st *Station) ServeAt(ready Time, d Duration, done func()) Time {
	if d < 0 {
		d = 0
	}
	if ready < st.s.now {
		ready = st.s.now
	}
	start := ready
	if st.busyUntil > start {
		start = st.busyUntil
	}
	fin := start.Add(d)
	st.busyUntil = fin
	st.busyInt += float64(d)
	st.jobs++
	if done != nil {
		st.s.At(fin, done)
	}
	return fin
}

// Wait makes process p execute a job of duration d on the station and
// blocks until it completes — the process-style entry point.
func (st *Station) Wait(p *Proc, d Duration) {
	sig := NewSignal(st.s)
	st.Serve(d, sig.Fire)
	sig.Wait(p)
}

// BusyUntil returns the time the current backlog drains.
func (st *Station) BusyUntil() Time { return st.busyUntil }

// Jobs returns the number of jobs ever served.
func (st *Station) Jobs() uint64 { return st.jobs }

// Utilization returns scheduled-service-time / elapsed since the last
// MarkEpoch. Because service time is accounted at submit time, utilization
// can transiently exceed 1 while a backlog is queued; by the time the
// backlog drains it is exact. Mark the epoch at a quiescent instant.
func (st *Station) Utilization() float64 {
	elapsed := float64(st.s.now - st.epoch)
	if elapsed <= 0 {
		return 0
	}
	return st.busyInt / elapsed
}

// BusyTime returns total service time scheduled since the last MarkEpoch.
func (st *Station) BusyTime() Duration { return Duration(st.busyInt) }

// MarkEpoch restarts utilization accounting at the current instant.
func (st *Station) MarkEpoch() {
	st.busyInt = 0
	st.epoch = st.s.now
}
