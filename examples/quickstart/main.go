// Quickstart: build a simulated cluster, mount Optimistic DAFS, read a file
// twice, and watch the second pass switch from RPC to client-initiated
// ORDMA — the paper's core mechanism — with zero server CPU.
package main

import (
	"fmt"

	"danas"
)

func main() {
	cl := danas.NewCluster()
	defer cl.Close()

	// A 16 MB file, warm in the server cache (the paper's standard
	// precondition).
	const fileSize = 16 << 20
	if err := cl.CreateWarmFile("quick.dat", fileSize); err != nil {
		panic(fmt.Sprintf("quickstart: create file: %v", err))
	}

	// An ODAFS mount whose data cache is much smaller than the file but
	// whose header population (the ORDMA reference directory) maps it all.
	m := cl.Mount(danas.ODAFS, danas.WithClientCache(
		16*1024, // cache block size
		64,      // data blocks (1 MB)
		4096,    // headers: directory reach
	))

	cl.Go("app", func(p *danas.Proc) {
		h, err := m.Open(p, "quick.dat")
		if err != nil {
			panic(fmt.Sprintf("quickstart: open: %v", err))
		}
		pass := func(name string) {
			start := p.Now()
			var total int64
			for off := int64(0); off < h.Size; off += 256 * 1024 {
				n, err := m.Read(p, h, off, 256*1024)
				if err != nil {
					panic(fmt.Sprintf("quickstart: read: %v", err))
				}
				total += n
			}
			el := p.Now().Sub(start)
			fmt.Printf("%s: %d MB in %v -> %.1f MB/s\n",
				name, total>>20, el, float64(total)/1e6/el.Seconds())
		}

		cl.MarkServerEpoch()
		pass("pass 1 (RPC, populates the reference directory)")
		fmt.Printf("  server CPU utilization: %.1f%%\n\n", 100*cl.ServerCPUUtilization())

		cl.MarkServerEpoch()
		pass("pass 2 (client-initiated ORDMA)")
		fmt.Printf("  server CPU utilization: %.1f%%\n\n", 100*cl.ServerCPUUtilization())

		st := m.ODAFSStats()
		fmt.Printf("ODAFS outcomes: %d RPC reads, %d ORDMA reads (%d ok, %d faults), %d local hits\n",
			st.RPCReads, st.ORDMAReads, st.ORDMASuccesses, st.ORDMAFaults, st.LocalHits)

		// Verify real content round-trips through the stack.
		buf := make([]byte, 64)
		if _, err := m.ReadData(p, h, 4096, buf); err != nil {
			panic(fmt.Sprintf("quickstart: read data: %v", err))
		}
		fmt.Printf("first content bytes at 4096: %x...\n", buf[:8])
	})
	cl.Run()
}
