package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"danas/internal/lint/analysis"
)

// The three analyzers in this file are scoped-down reimplementations
// of golang.org/x/tools/go/analysis/passes' nilness, shadow and
// lostcancel. The upstream module cannot be vendored in this offline
// build environment, so the multichecker carries these equivalents;
// each keeps the upstream name and the high-signal core of the check
// while dropping the SSA-based reasoning the originals use for the
// long tail.

// Nilness flags uses of a variable inside the body of `if x == nil`
// that would dereference it: field selection, indexing, and explicit
// *x. The upstream analyzer proves nilness along all paths over SSA;
// this version handles the directly-guarded case, which is where the
// repo's past nil-sink bug lived.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flag dereferences of a variable inside the body of its own == nil guard",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) (any, error) {
	eachNonTestFile(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			bin, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok || bin.Op != token.EQL {
				return true
			}
			var guarded *ast.Ident
			if isNilIdent(bin.Y) {
				guarded, _ = ast.Unparen(bin.X).(*ast.Ident)
			} else if isNilIdent(bin.X) {
				guarded, _ = ast.Unparen(bin.Y).(*ast.Ident)
			}
			if guarded == nil {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[guarded].(*types.Var)
			if !ok || !nilableDeref(obj.Type()) {
				return true
			}
			if reassignedIn(pass, ifs.Body, obj) {
				return true
			}
			ast.Inspect(ifs.Body, func(m ast.Node) bool {
				switch e := m.(type) {
				case *ast.SelectorExpr:
					if usesVar(pass, e.X, obj) && isFieldSelection(pass, e) {
						pass.Reportf(e.Pos(), "nil dereference in field selection (%s is nil here)", guarded.Name)
					}
				case *ast.StarExpr:
					if usesVar(pass, e.X, obj) {
						pass.Reportf(e.Pos(), "nil dereference in load (%s is nil here)", guarded.Name)
					}
				case *ast.IndexExpr:
					if usesVar(pass, e.X, obj) {
						if _, isMap := obj.Type().Underlying().(*types.Map); !isMap {
							pass.Reportf(e.Pos(), "nil dereference in index operation (%s is nil here)", guarded.Name)
						}
					}
				}
				return true
			})
			return true
		})
	})
	return nil, nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// nilableDeref reports whether dereferencing a nil value of type t
// faults: pointers and slices (map reads and nil-method calls can be
// legal, so they are excluded).
func nilableDeref(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// isFieldSelection reports whether sel selects a struct field (not a
// method — calling a method on a nil pointer can be legal).
func isFieldSelection(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

func usesVar(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == v
}

// reassignedIn reports whether body assigns to v anywhere.
func reassignedIn(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if pass.TypesInfo.Uses[id] == v || pass.TypesInfo.Defs[id] == v {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// Shadow flags a short variable declaration that redeclares a name
// from an enclosing function scope when the shadowed variable is
// still used after the inner scope closes — the case where the
// shadow plausibly swallows an assignment the outer reader expects.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "flag shadowed variable declarations whose shadowed original is used after the inner scope ends",
	Run:  runShadow,
}

func runShadow(pass *analysis.Pass) (any, error) {
	// Collect every use position of every object once, sorted, so
	// "used after scope end" is a binary search.
	usePos := map[types.Object][]token.Pos{}
	for id, obj := range pass.TypesInfo.Uses {
		usePos[obj] = append(usePos[obj], id.Pos())
	}
	for _, ps := range usePos {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}
	eachNonTestFile(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				inner, ok := pass.TypesInfo.Defs[id].(*types.Var)
				if !ok {
					continue
				}
				innerScope := inner.Parent()
				if innerScope == nil || innerScope.Parent() == nil {
					continue
				}
				_, outerObj := innerScope.Parent().LookupParent(id.Name, id.Pos())
				outer, ok := outerObj.(*types.Var)
				if !ok || outer.Parent() == pass.Pkg.Scope() || outer.Parent() == types.Universe {
					continue
				}
				if !types.Identical(inner.Type(), outer.Type()) {
					continue // different type: almost always deliberate reuse of a good name
				}
				// Is the outer variable used after the inner scope ends?
				ps := usePos[outer]
				i := sort.Search(len(ps), func(i int) bool { return ps[i] > innerScope.End() })
				if i < len(ps) && ps[i] <= outer.Parent().End() {
					pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d",
						id.Name, pass.Fset.Position(outer.Pos()).Line)
				}
			}
			return true
		})
	})
	return nil, nil
}

// LostCancel flags context.WithCancel/WithTimeout/WithDeadline calls
// whose cancel function is discarded with the blank identifier; the
// context (and its resources) can then never be released.
var LostCancel = &analysis.Analyzer{
	Name: "lostcancel",
	Doc:  "flag discarded cancel functions from context.WithCancel and friends",
	Run:  runLostCancel,
}

var cancelFuncs = map[string]bool{"WithCancel": true, "WithTimeout": true, "WithDeadline": true, "WithCancelCause": true}

func runLostCancel(pass *analysis.Pass) (any, error) {
	eachNonTestFile(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 2 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !cancelFuncs[fn.Name()] {
				return true
			}
			if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(id.Pos(), "the cancel function returned by context.%s should be used, not discarded, to avoid a context leak", fn.Name())
			}
			return true
		})
	})
	return nil, nil
}
