// Fixture for typederr. The import path matters: the analyzer fires
// only inside TypedErrPackages, so this fixture type-checks under the
// danas/internal/fail path to land in the registered list.
package fail

import (
	"errors"
	"fmt"
)

// ErrGone is sentinel territory: package-level errors.New is the point
// of a sentinel-declaring package, not a finding.
var ErrGone = errors.New("fail: gone")

func callSiteNew() error {
	return errors.New("fail: ad hoc") // want `call-site errors\.New`
}

func unwrapped(name string) error {
	return fmt.Errorf("fail: lost %q", name) // want `fmt\.Errorf without %w`
}

func wrapped(name string) error {
	return fmt.Errorf("fail: %w %q", ErrGone, name)
}

// dynamic has no compile-time format string; there is nothing to prove.
func dynamic(format string) error {
	return fmt.Errorf(format, 1)
}
