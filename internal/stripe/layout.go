// Package stripe shards the flat NAS namespace across S independent
// servers by block-range striping: unit u of a file (bytes
// [u*Unit, (u+1)*Unit)) lives on shard u mod S. Every shard is a complete
// NAS box — its own file system, disk, server cache, NIC and link — and
// the namespace is replicated (every shard knows every file's name and
// size) while the data traffic partitions by offset.
//
// The package has two layers: Layout, the pure striping arithmetic, and
// Client, a nas.Client that routes per-block requests to per-shard
// sub-clients. The cached ODAFS/DAFS client does its own routing (one
// client cache, per-shard ORDMA reference directories — see
// internal/core), but shares the same Layout.
package stripe

import (
	"errors"
	"fmt"
)

// Layout describes one placement scheme: S shards with a fixed stripe
// unit, each shard optionally backed by R replica copies spread across
// failure racks. Placement and replication deliberately share this one
// abstraction — where a byte lives (ShardOf) and where its redundant
// copies live (Rack) are both pure functions of the layout. The zero
// value is invalid; use New or a literal with Shards >= 1 and Unit >= 1.
type Layout struct {
	// Shards is the number of servers the namespace is striped across.
	Shards int
	// Unit is the stripe unit in bytes: contiguous runs of Unit bytes
	// map to one shard before striping moves to the next.
	Unit int64
	// Replicas is the number of redundant copies beyond the primary each
	// shard keeps (0 = unreplicated, the pre-replication fleets).
	Replicas int
	// Racks is the number of failure domains copies are spread across.
	// 0 means rack-oblivious placement (every copy in rack 0); with
	// Racks > Replicas every copy of a shard lands in a distinct rack.
	Racks int
}

// New validates and returns a Layout.
func New(shards int, unit int64) (Layout, error) {
	l := Layout{Shards: shards, Unit: unit}
	if err := l.Validate(); err != nil {
		return Layout{}, err
	}
	return l, nil
}

// Single returns the degenerate one-shard layout (everything on shard 0).
func Single() Layout { return Layout{Shards: 1, Unit: 1 << 62} }

// ErrBadLayout classifies every Validate rejection; the rendered
// message names the specific field ("stripe: layout needs ...").
var ErrBadLayout = errors.New("stripe: layout")

// Validate reports whether the layout is usable.
func (l Layout) Validate() error {
	if l.Shards < 1 {
		return fmt.Errorf("%w needs at least one shard, got %d", ErrBadLayout, l.Shards)
	}
	if l.Unit < 1 {
		return fmt.Errorf("%w needs a positive stripe unit, got %d", ErrBadLayout, l.Unit)
	}
	if l.Replicas < 0 {
		return fmt.Errorf("%w needs a non-negative replica count, got %d", ErrBadLayout, l.Replicas)
	}
	if l.Racks < 0 {
		return fmt.Errorf("%w needs a non-negative rack count, got %d", ErrBadLayout, l.Racks)
	}
	return nil
}

// Width is the number of copies each shard keeps: the primary plus the
// replicas.
func (l Layout) Width() int { return l.Replicas + 1 }

// Rack places copy number `copy` (0 = primary) of a shard in a failure
// rack: copies rotate through the racks starting from the shard's own,
// so with Racks > Replicas no two copies of one shard share a rack, and
// primaries themselves spread across racks instead of stacking in one.
func (l Layout) Rack(shard, copy int) int {
	if l.Racks <= 1 {
		return 0
	}
	return (shard + copy) % l.Racks
}

// ShardOf returns the shard owning the byte at off.
func (l Layout) ShardOf(off int64) int {
	if l.Shards == 1 {
		return 0
	}
	return int((off / l.Unit) % int64(l.Shards))
}

// Span is one contiguous byte range owned by a single shard.
type Span struct {
	Shard int
	Off   int64
	Len   int64
}

// ExtendTargets returns the shards whose replicas lag behind off+n after
// the spans of [off, off+n) were written: every shard except the last
// span's owner, whose write already extended its replica to the end.
// The striped clients send these shards a zero-length write at the new
// end so the replicated size metadata stays coherent.
func (l Layout) ExtendTargets(off, n int64) []int {
	last := -1
	if spans := l.Spans(off, n); len(spans) > 0 {
		last = spans[len(spans)-1].Shard
	}
	var out []int
	for s := 0; s < l.Shards; s++ {
		if s != last {
			out = append(out, s)
		}
	}
	return out
}

// Spans decomposes the byte range [off, off+n) into per-shard contiguous
// spans in offset order, merging adjacent units that land on the same
// shard (always the case when Shards == 1). n <= 0 yields nil.
func (l Layout) Spans(off, n int64) []Span {
	if n <= 0 {
		return nil
	}
	if l.Shards == 1 {
		return []Span{{Shard: 0, Off: off, Len: n}}
	}
	var out []Span
	for n > 0 {
		step := l.Unit - off%l.Unit
		if step > n {
			step = n
		}
		sh := l.ShardOf(off)
		if k := len(out) - 1; k >= 0 && out[k].Shard == sh && out[k].Off+out[k].Len == off {
			out[k].Len += step
		} else {
			out = append(out, Span{Shard: sh, Off: off, Len: step})
		}
		off += step
		n -= step
	}
	return out
}
