// Package rpc is a SunRPC-style remote procedure call layer over UDP/IP:
// transaction IDs, request/response matching with multiple outstanding
// calls, and reply payload delivery either through the normal copy path or
// by RDDP-RPC direct placement when the caller pre-posted a tagged buffer.
//
// NFS and its two optimized derivatives ride this layer; DAFS has its own
// session protocol over VI (see internal/dafs).
package rpc

import (
	"errors"
	"fmt"

	"danas/internal/nic"
	"danas/internal/obs"
	"danas/internal/sim"
	"danas/internal/udpip"
	"danas/internal/wire"
)

// ErrTimeout is returned (via Response.Err) when a call exhausts its
// retransmission budget without an answer — the server is crashed,
// partitioned, or hopelessly overloaded. Soft-mount semantics: the
// caller's future always resolves, so a dead shard cannot hang a client
// process forever.
var ErrTimeout = errors.New("rpc: call timed out")

// callMsg is the datagram body for both requests and replies.
type callMsg struct {
	Hdr          *wire.Header
	PayloadBytes int64
	Payload      any
	// replyTag, on requests, asks the server to stamp this tag on its
	// reply so the client NIC can match a pre-posted buffer.
	replyTag uint64
}

// Request is a received call, handed to the server handler.
type Request struct {
	Hdr          *wire.Header
	PayloadBytes int64
	Payload      any

	from     *udpip.Stack
	fromPort int
	replyTag uint64
}

// ClientNIC returns the calling host's NIC — the RDMA target for
// RDDP-RDMA replies.
func (r *Request) ClientNIC() *nic.NIC { return r.from.NIC() }

// Reply is the handler's response.
type Reply struct {
	Hdr          *wire.Header
	PayloadBytes int64
	Payload      any
	// CopyBytes is server-side copy work (e.g. staging cache data into
	// mbufs) charged before transmission.
	CopyBytes int64
}

// Handler processes one request in a server worker's process context.
type Handler func(p *sim.Proc, req *Request) *Reply

// drcKey identifies a request for the duplicate-request cache.
type drcKey struct {
	from     *udpip.Stack
	fromPort int
	xid      uint64
}

// drcEntry caches a completed reply so retransmitted requests are answered
// without re-executing the handler (at-most-once execution).
type drcEntry struct {
	done  bool
	reply *callMsg
	bytes int64
	tag   uint64
}

// drcLimit bounds the duplicate-request cache, like the classic 2049-entry
// nfsd DRC.
const drcLimit = 2048

// Server serves RPCs with a fixed pool of worker processes, like nfsd.
type Server struct {
	sock    *udpip.Socket
	stack   *udpip.Stack
	handler Handler

	drc      map[drcKey]*drcEntry
	drcOrder []drcKey

	// down marks the server host crashed: queued and arriving requests
	// are discarded unexecuted (failure injection; see SetDown).
	down bool

	Requests   uint64
	Duplicates uint64
	// Discarded counts requests dropped while the server was down.
	Discarded uint64
}

// SetDown marks the server crashed (true) or recovered (false). While
// down, worker processes discard requests — including ones already
// queued in the socket at crash time — without executing handlers or
// touching the DRC, so in-flight calls die with the host.
func (srv *Server) SetDown(down bool) { srv.down = down }

// ResetDRC clears the duplicate-request cache — a rebooted server has
// lost it, so post-restart retransmissions of pre-crash calls re-execute
// (exactly the classic NFS-over-UDP recovery behaviour).
func (srv *Server) ResetDRC() {
	srv.drc = make(map[drcKey]*drcEntry)
	srv.drcOrder = nil
}

// NewServer binds an RPC server to (stack, port) and starts nWorkers
// worker processes.
func NewServer(s *sim.Scheduler, stack *udpip.Stack, port, nWorkers int, h Handler) *Server {
	srv := &Server{sock: stack.Socket(port), stack: stack, handler: h, drc: make(map[drcKey]*drcEntry)}
	if nWorkers <= 0 {
		nWorkers = 1
	}
	for i := 0; i < nWorkers; i++ {
		s.Go(fmt.Sprintf("rpcd-%s-%d", stack.Host().Name, i), srv.worker)
	}
	return srv
}

func (srv *Server) worker(p *sim.Proc) {
	for {
		d := srv.sock.Recv(p)
		if srv.down {
			srv.Discarded++
			continue // crashed host: the request dies unexecuted
		}
		srv.serve(p, d)
	}
}

// serve executes one received request. The request's span (if traced) is
// active for exactly the scope of this call, so server CPU, cache, disk
// and write-behind work attribute to the originating operation — and the
// worker's idle Recv wait between requests attributes to nothing.
func (srv *Server) serve(p *sim.Proc, d *udpip.Datagram) {
	h := srv.stack.Host()
	msg := d.Body.(*callMsg)
	obs.Activate(p, msg.Hdr.Span)
	defer obs.Activate(p, nil)
	// RPC receive demux + dispatch.
	h.Compute(p, h.P.RPCServerCost)
	key := drcKey{from: d.From, fromPort: d.FromPort, xid: msg.Hdr.XID}
	if e, dup := srv.drc[key]; dup {
		srv.Duplicates++
		if e.done {
			// Answer from the cache without re-executing.
			srv.sock.SendTo(p, d.From, d.FromPort, e.bytes, e.reply, 0, e.tag)
		}
		// In progress: drop; the original execution will reply.
		return
	}
	entry := &drcEntry{}
	srv.installDRC(key, entry)
	srv.Requests++
	reply := srv.handler(p, &Request{
		Hdr:          msg.Hdr,
		PayloadBytes: msg.PayloadBytes,
		Payload:      msg.Payload,
		from:         d.From,
		fromPort:     d.FromPort,
		replyTag:     msg.replyTag,
	})
	if reply == nil {
		return
	}
	bytes := int64(reply.Hdr.WireSize()) + reply.PayloadBytes
	out := &callMsg{
		Hdr:          reply.Hdr,
		PayloadBytes: reply.PayloadBytes,
		Payload:      reply.Payload,
	}
	entry.done = true
	entry.reply = out
	entry.bytes = bytes
	entry.tag = msg.replyTag
	srv.sock.SendTo(p, d.From, d.FromPort, bytes, out, reply.CopyBytes, msg.replyTag)
}

// installDRC records a request in the duplicate-request cache, evicting
// the oldest entries beyond the limit.
func (srv *Server) installDRC(key drcKey, e *drcEntry) {
	srv.drc[key] = e
	srv.drcOrder = append(srv.drcOrder, key)
	for len(srv.drcOrder) > drcLimit {
		old := srv.drcOrder[0]
		srv.drcOrder = srv.drcOrder[1:]
		delete(srv.drc, old)
	}
}

// Response is a completed call as seen by the client.
type Response struct {
	Hdr          *wire.Header
	PayloadBytes int64
	Payload      any
	// Direct reports the payload was placed by the NIC into the
	// pre-posted buffer: the client must not copy it anywhere.
	Direct bool
	// Err is non-nil when the call failed locally without a reply
	// (retry exhaustion: ErrTimeout); Hdr and the payload fields are
	// unset and must not be touched.
	Err error
}

// CallOpts tunes one call.
type CallOpts struct {
	// PayloadBytes/Payload attach request payload (writes).
	PayloadBytes int64
	Payload      any
	// CopyBytes is client-side copy work staging the request payload.
	CopyBytes int64
	// Prepare, if set, runs after the XID is assigned and before the
	// request is transmitted; it returns the reply tag to request (the
	// pre-posting client registers and pre-posts its buffer here).
	Prepare func(xid uint64) uint64
}

// Client issues RPCs to a fixed server endpoint. Any number of calls may
// be outstanding; a demux process matches replies by XID.
type Client struct {
	stack      *udpip.Stack
	sock       *udpip.Socket
	server     *udpip.Stack
	serverPort int

	nextXID uint64
	pending map[uint64]*sim.Future[*Response]

	// RetransmitTimeout, when nonzero, re-sends an unanswered request
	// after each timeout with exponential backoff (sim.Retry's shared
	// policy), up to MaxRetries times — classic RPC-over-UDP
	// reliability. The server's duplicate-request cache makes retried
	// calls at-most-once. When the budget is exhausted the call
	// resolves with ErrTimeout.
	RetransmitTimeout sim.Duration
	MaxRetries        int

	Calls       uint64
	Retransmits uint64
	// TimedOut counts calls that exhausted their retries and failed.
	TimedOut uint64
}

// NewClient creates a client on stack calling (server, serverPort), bound
// to the given local port.
func NewClient(s *sim.Scheduler, stack *udpip.Stack, localPort int, server *udpip.Stack, serverPort int) *Client {
	c := &Client{
		stack:      stack,
		sock:       stack.Socket(localPort),
		server:     server,
		serverPort: serverPort,
		pending:    make(map[uint64]*sim.Future[*Response]),
	}
	s.Go("rpc-demux-"+stack.Host().Name, c.demux)
	return c
}

func (c *Client) demux(p *sim.Proc) {
	for {
		d := c.sock.Recv(p)
		msg := d.Body.(*callMsg)
		fut, ok := c.pending[msg.Hdr.XID]
		if !ok {
			continue // stale or duplicate reply
		}
		delete(c.pending, msg.Hdr.XID)
		fut.Resolve(&Response{
			Hdr:          msg.Hdr,
			PayloadBytes: msg.PayloadBytes,
			Payload:      msg.Payload,
			Direct:       d.Direct,
		})
	}
}

// Call sends req and blocks until the matching reply arrives. The header's
// XID is assigned by the client.
func (c *Client) Call(p *sim.Proc, req *wire.Header, opts CallOpts) *Response {
	h := c.stack.Host()
	c.nextXID++
	xid := c.nextXID
	req.XID = xid
	req.Span = obs.Active(p)
	c.Calls++

	var tag uint64
	if opts.Prepare != nil {
		tag = opts.Prepare(xid)
	}
	fut := sim.NewFuture[*Response](p.Sched())
	c.pending[xid] = fut

	h.Compute(p, h.P.RPCClientSend)
	msg := &callMsg{
		Hdr:          req,
		PayloadBytes: opts.PayloadBytes,
		Payload:      opts.Payload,
		replyTag:     tag,
	}
	bytes := int64(req.WireSize()) + opts.PayloadBytes
	c.sock.SendTo(p, c.server, c.serverPort, bytes, msg, opts.CopyBytes, 0)
	if c.RetransmitTimeout > 0 {
		// Retransmission runs in event context (the kernel RPC timer),
		// charging send-side costs asynchronously; on exhaustion the
		// pending future resolves with ErrTimeout so the caller never
		// hangs on a dead server. Each fired timer means the interval
		// since the last transmission was spent waiting on a lost
		// exchange: that dead time is the span's retry phase.
		sp := req.Span
		lastSend := h.S.Now()
		sim.Retry(c.stack.Host().S, c.RetransmitTimeout, c.MaxRetries, fut.Fired,
			func() {
				c.Retransmits++
				now := c.stack.Host().S.Now()
				sp.CountRetry()
				sp.Add(obs.PhaseRetry, now.Sub(lastSend))
				lastSend = now
				c.stack.Host().ComputeAsync(c.stack.Host().P.RPCClientSend, nil)
				c.sock.SendToAsync(c.server, c.serverPort, bytes, msg, 0)
			},
			func() {
				delete(c.pending, xid)
				c.TimedOut++
				sp.Add(obs.PhaseRetry, c.stack.Host().S.Now().Sub(lastSend))
				fut.Resolve(&Response{Err: ErrTimeout})
			})
	}

	resp := fut.Value(p)
	h.Compute(p, h.P.RPCClientRecv)
	return resp
}

// Outstanding returns the number of in-flight calls.
func (c *Client) Outstanding() int { return len(c.pending) }
