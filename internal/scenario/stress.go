// Seeded stress generation: random fleet shapes under random
// correlated fault schedules, every draw a pure function of the seed.
// Fault times are percentages of the trace span, so a generated
// scenario is duration-bounded by construction — the whole schedule
// lands inside the replay at every -scale — and the same seed yields a
// byte-identical scenario set and byte-identical run reports across
// reruns and worker-pool widths.
package scenario

import (
	"fmt"

	"danas/internal/exper"
	"danas/internal/sim"
)

// stressSystems is the protocol draw order (legend order, as tokens).
var stressSystems = []string{"nfs", "nfs-pre", "nfs-hybrid", "dafs", "odafs"}

// stressReadFracs is the read-fraction draw set.
var stressReadFracs = []float64{1.0, 0.9, 0.7, 0.5, 0.3}

// Stress generates count scenarios deterministically from the seed.
// Every generated spec passes Validate — the generator only composes
// legal schedules (correlated groups draw distinct shards; staggers
// and windows stay inside the trace span).
func Stress(seed uint64, count int) []*Spec {
	r := sim.NewRand(seed)
	specs := make([]*Spec, count)
	for i := range specs {
		specs[i] = stressSpec(r, i)
	}
	return specs
}

// stressSpec draws one scenario. All draws come from the shared
// stream, so the k-th spec depends on the seed and every draw before
// it — reordering or resizing the draw set is a generator version
// change, caught by the determinism test.
func stressSpec(r *sim.Rand, i int) *Spec {
	shards := 1 << r.Intn(4) // 1, 2, 4, 8
	spec := &Spec{
		Name:     fmt.Sprintf("stress-%04d", i),
		Fleet:    Fleet{Shards: shards, System: stressSystems[r.Intn(len(stressSystems))]},
		Retry:    Retry{RTO: 2 * sim.Millisecond, Budget: 7},
		Workload: exper.BaseTraceGen(),
	}
	spec.Workload.Ops = 1000 + 500*r.Intn(3)
	spec.Workload.Files = 4 + r.Intn(5)
	spec.Workload.ReadFrac = stressReadFracs[r.Intn(len(stressReadFracs))]
	spec.Workload.Rate = 4000 + 1000*float64(r.Intn(3))
	spec.Workload.Seed = r.Uint64()
	if r.Intn(2) == 1 {
		spec.WB = WriteBehind{Enabled: true, Auto: true}
		spec.Workload.CommitEvery = 16 + 16*r.Intn(2)
	}

	// One fault per spec, correlated when the fleet is big enough. All
	// times are percentages: at in [10, 40], downtime in [5, 15], and a
	// rolling stagger of at most half the downtime, so even an 8-shard
	// roll ends by at + 7*8% + 15% <= 100% of the span.
	at := Pct(int64(10 + r.Intn(31)))
	down := 5 + r.Intn(11)
	kind := r.Intn(4)
	if shards == 1 && kind < 2 {
		kind = 0 // correlated patterns need at least 2 shards
	}
	var f Fault
	switch kind {
	case 0:
		f = Fault{Kind: FaultCrashRestart, Shards: []int{r.Intn(shards)}, At: at, Down: Pct(int64(down))}
	case 1:
		k := 2 + r.Intn(shards-1)
		f = Fault{Kind: FaultMultiCrash, Shards: r.Perm(shards)[:k], At: at, Down: Pct(int64(down))}
	case 2:
		if shards == 1 {
			f = Fault{Kind: FaultDegrade, Shards: []int{0}, At: at, Down: Pct(int64(down)), Factor: 2 << r.Intn(3)}
			break
		}
		k := 2 + r.Intn(shards-1)
		// Cap the stagger so the longest roll (7 steps) plus the final
		// downtime still ends inside the span: 40 + 7*6 + 15 <= 100.
		stagger := 1 + r.Intn(min(max(down/2, 1), 6))
		f = Fault{Kind: FaultRollingRestart, Shards: r.Perm(shards)[:k], At: at,
			Down: Pct(int64(down)), Stagger: Pct(int64(stagger))}
	default:
		f = Fault{Kind: FaultDegrade, Shards: []int{r.Intn(shards)}, At: at, Down: Pct(int64(down)), Factor: 2 << r.Intn(3)}
	}
	spec.Faults = []Fault{f}
	spec.Describe = fmt.Sprintf("seeded stress draw: %s over a %d-shard %s fleet",
		f.Kind, shards, spec.Fleet.System)

	// Loose guardrails: the fleet must do useful work and most
	// operations must survive the fault — dead fleets and hangs fail,
	// ordinary degradation passes.
	spec.Asserts = []Assert{
		{Kind: AssertMinMBps, Value: 0.01},
		{Kind: AssertMaxFailedOps, Value: float64(spec.Workload.Ops) / 2},
	}
	return spec
}

// StressRun generates count scenarios from the seed and runs them all
// at the given scale across the experiment worker pool. Reports come
// back in generation order regardless of pool width.
func StressRun(seed uint64, count int, scale exper.Scale) []*Report {
	specs := Stress(seed, count)
	return exper.RunCells(len(specs),
		func(i int) string { return "scenario/" + specs[i].Name },
		func(i int) *Report { return mustRun(specs[i], scale) })
}
