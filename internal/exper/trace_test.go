package exper

import (
	"strings"
	"testing"
)

// TestTraceReplayShape runs the full trace replay at tiny scale and
// checks deterministic row order, sane measurements, per-shard
// utilization arity, and percentile ordering in every cell.
func TestTraceReplayShape(t *testing.T) {
	rows := TraceReplay(tiny)
	if want := len(TraceShardCounts) * len(ScalingSystems); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	i := 0
	for _, s := range TraceShardCounts {
		for _, sys := range ScalingSystems {
			r := rows[i]
			i++
			if r.System != sys || r.Shards != s {
				t.Fatalf("row %d = %s/%ds, want %s/%ds (deterministic ordering broken)",
					i-1, r.System, r.Shards, sys, s)
			}
			if r.MBps <= 0 {
				t.Errorf("%s/%ds: throughput %.2f, want > 0", sys, s, r.MBps)
			}
			if r.P50Micros <= 0 || r.P95Micros < r.P50Micros || r.P99Micros < r.P95Micros {
				t.Errorf("%s/%ds: percentiles out of order: p50 %.1f p95 %.1f p99 %.1f",
					sys, s, r.P50Micros, r.P95Micros, r.P99Micros)
			}
			if r.MaxOutstanding < 1 || r.MaxOutstanding > traceDepth {
				t.Errorf("%s/%ds: MaxOutstanding %d outside [1, %d]", sys, s, r.MaxOutstanding, traceDepth)
			}
			if len(r.ShardCPUPct) != s || len(r.ShardLinkPct) != s {
				t.Fatalf("%s/%ds: per-shard series lengths %d/%d, want %d",
					sys, s, len(r.ShardCPUPct), len(r.ShardLinkPct), s)
			}
		}
	}
}

// TestTraceReplayQueueDepthExercised checks the replay actually uses
// submission/completion concurrency: under the offered load, every
// protocol holds more than one operation outstanding at some point —
// the property the synchronous one-call-at-a-time API could not express.
func TestTraceReplayQueueDepthExercised(t *testing.T) {
	rows := TraceReplayOver(tiny, []int{1})
	for _, r := range rows {
		if r.MaxOutstanding <= 1 {
			t.Errorf("%s: MaxOutstanding = %d; the open-loop driver should pipeline ops", r.System, r.MaxOutstanding)
		}
	}
}

// TestTraceReplayShardsDrainTail checks the experiment's point: for the
// protocols whose bottleneck is server-side, spreading the same offered
// load over more shards must not worsen tail response time or queue
// stalls. Standard NFS is excluded — its bottleneck is the client CPU
// (per-byte copies), which sharding cannot relieve, so under permanent
// overload its p99 is just the backlog ramp and not stable across
// shard counts.
func TestTraceReplayShardsDrainTail(t *testing.T) {
	rows := TraceReplayOver(Scale(0.08), []int{1, 4})
	p99 := map[string]map[int]float64{}
	stalls := map[string]map[int]int64{}
	for _, r := range rows {
		if p99[r.System] == nil {
			p99[r.System] = map[int]float64{}
			stalls[r.System] = map[int]int64{}
		}
		p99[r.System][r.Shards] = r.P99Micros
		stalls[r.System][r.Shards] = r.Stalls
	}
	for _, sys := range []string{"NFS pre-posting", "NFS hybrid", "DAFS", "ODAFS"} {
		if p99[sys][4] > p99[sys][1]*1.15 {
			t.Errorf("%s: p99 grew with shards: %.1fus (1) -> %.1fus (4)", sys, p99[sys][1], p99[sys][4])
		}
		if stalls[sys][4] > stalls[sys][1] {
			t.Errorf("%s: stalls grew with shards: %d (1) -> %d (4)", sys, stalls[sys][1], stalls[sys][4])
		}
	}
}

// TestFormatTraceReplayReportsEveryCell checks the danas-bench
// rendering carries the summary tables and one detail line per cell.
func TestFormatTraceReplayReportsEveryCell(t *testing.T) {
	rows := TraceReplayOver(tiny, []int{1, 2})
	out := FormatTraceReplay(rows)
	for _, want := range []string{
		"Trace replay: completed throughput vs shards",
		"Trace replay: p99 response time vs shards",
		"S=1 ODAFS", "S=2 NFS hybrid", "p95=", "stalls=", "cpu%=[", "link%=[",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered replay missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "S="); lines != len(rows) {
		t.Errorf("%d detail lines for %d cells", lines, len(rows))
	}
}
