// Package host models an end-system: a single-CPU machine with an
// operating system whose costs (copies, interrupts, scheduling, syscalls,
// page registration) are charged against the CPU in simulated time.
//
// The paper's overhead equation o(m) = m*o_perbyte + o_perIO (§2.2) is
// realized here: per-byte work goes through Copy/CacheCopy, per-I/O work
// through Compute/Interrupt/Syscall.
package host

import (
	"fmt"

	"danas/internal/obs"
	"danas/internal/sim"
)

// Host is one machine in the cluster.
type Host struct {
	Name string
	S    *sim.Scheduler
	P    *Params
	// CPU is the single processor, shared by application, kernel and
	// interrupt work (the testbed was uniprocessor).
	CPU *sim.Station
	// VM tracks page registration and pinning for DMA.
	VM *VM
	// CPUPhase is the span phase this machine's CPU time attributes
	// to; the zero value is obs.PhaseClient, so only server machines
	// need marking (the cluster builder sets obs.PhaseServer).
	CPUPhase obs.Phase

	intrPending int // received packets since last interrupt (coalescing)
}

// New creates a host with the given parameter table.
func New(s *sim.Scheduler, name string, p *Params) *Host {
	h := &Host{
		Name: name,
		S:    s,
		P:    p,
		CPU:  sim.NewStation(s, name+"/cpu"),
	}
	h.VM = newVM(h)
	return h
}

// Compute blocks p while the CPU performs d of work. When p carries an
// active span, the full wall time (queueing behind other jobs included)
// attributes to the host's CPU phase — honest attribution: a saturated
// server CPU shows up as server time, not as unexplained residue.
func (h *Host) Compute(p *sim.Proc, d sim.Duration) {
	sp := obs.Active(p)
	if sp == nil {
		h.CPU.Wait(p, d)
		return
	}
	t0 := p.Now()
	h.CPU.Wait(p, d)
	sp.Add(h.CPUPhase, p.Now().Sub(t0))
}

// ComputeAsync charges d of CPU work and calls done when it completes,
// without requiring a process context (used by interrupt-driven paths).
func (h *Host) ComputeAsync(d sim.Duration, done func()) {
	h.CPU.Serve(d, done)
}

// CopyCost returns the CPU time of a plain memcpy of n bytes.
func (h *Host) CopyCost(n int64) sim.Duration {
	return sim.TransferTime(n, h.P.MemCopyBW)
}

// Copy blocks p while the CPU copies n bytes.
func (h *Host) Copy(p *sim.Proc, n int64) {
	h.Compute(p, h.CopyCost(n))
}

// CacheCopyCost returns the CPU time of a copy through the kernel buffer
// cache (slower: includes getblk, mapping and bookkeeping).
func (h *Host) CacheCopyCost(n int64) sim.Duration {
	return sim.TransferTime(n, h.P.BufferCacheBW)
}

// Syscall charges one user/kernel crossing.
func (h *Host) Syscall(p *sim.Proc) {
	h.Compute(p, h.P.SyscallCost)
}

// Interrupt models the NIC interrupting the host: the CPU takes the
// interrupt, runs handler work, then done fires. Call from event context.
func (h *Host) Interrupt(handler sim.Duration, done func()) {
	h.CPU.Serve(h.P.InterruptCost+handler, done)
}

// CoalescedInterrupt charges interrupt entry only once per IntrCoalesce
// deliveries, modeling the NIC's interrupt-coalescing window, then runs
// handler work.
func (h *Host) CoalescedInterrupt(handler sim.Duration, done func()) {
	cost := handler
	h.intrPending++
	if h.intrPending >= h.P.IntrCoalesce || h.P.IntrCoalesce <= 1 {
		h.intrPending = 0
		cost += h.P.InterruptCost
	}
	h.CPU.Serve(cost, done)
}

// Wakeup charges the scheduler cost of waking a blocked thread, then fires
// done. Use when a completion must resume a sleeping process through the
// OS scheduler (as opposed to being consumed by polling).
func (h *Host) Wakeup(done func()) {
	h.CPU.Serve(h.P.SchedWakeup, done)
}

// String implements fmt.Stringer.
func (h *Host) String() string { return fmt.Sprintf("host(%s)", h.Name) }
